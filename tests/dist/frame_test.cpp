#include "dist/frame.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "dist/transport.h"

namespace gks::dist {
namespace {

TEST(Frame, EncodeLaysOutMagicLengthPayload) {
  const std::string frame = encode_frame("hi");
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 2);
  EXPECT_EQ(frame.substr(0, 4), std::string(kFrameMagic, 4));
  EXPECT_EQ(static_cast<unsigned char>(frame[4]), 2u);  // little-endian low
  EXPECT_EQ(static_cast<unsigned char>(frame[5]), 0u);
  EXPECT_EQ(frame.substr(kFrameHeaderBytes), "hi");
}

TEST(Frame, RoundTripsOneMessage) {
  FrameDecoder dec;
  dec.feed(encode_frame("{\"type\":\"hello\"}"));
  const auto msg = dec.next();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(*msg, "{\"type\":\"hello\"}");
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(Frame, RoundTripsEmptyAndBinaryPayloads) {
  FrameDecoder dec;
  std::string binary("\x00\xff" "GKF1\x00", 7);  // embedded NUL and magic
  dec.feed(encode_frame(""));
  dec.feed(encode_frame(binary));
  auto a = dec.next();
  auto b = dec.next();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, "");
  EXPECT_EQ(*b, binary);
}

TEST(Frame, ReassemblesByteAtATimeDelivery) {
  const std::string wire = encode_frame("first") + encode_frame("second");
  FrameDecoder dec;
  std::string got;
  for (char c : wire) {
    dec.feed(&c, 1);
    while (auto msg = dec.next()) got += *msg + "|";
  }
  EXPECT_EQ(got, "first|second|");
}

TEST(Frame, TornFrameWaitsForTheRest) {
  const std::string wire = encode_frame("split-me");
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size() - 3);
  EXPECT_FALSE(dec.next().has_value());  // payload incomplete
  EXPECT_GT(dec.buffered(), 0u);
  dec.feed(wire.data() + wire.size() - 3, 3);
  const auto msg = dec.next();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(*msg, "split-me");
}

TEST(Frame, TruncatedHeaderWaits) {
  FrameDecoder dec;
  dec.feed("GKF", 3);  // magic prefix is consistent so far
  EXPECT_FALSE(dec.next().has_value());
  dec.feed("1\x02\x00\x00\x00ok", 7);
  const auto msg = dec.next();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(*msg, "ok");
}

TEST(Frame, GarbageHeaderThrowsBeforeFullHeader) {
  // An HTTP probe is rejected on its very first bytes: the decoder
  // checks the magic prefix without waiting for a full 8-byte header.
  FrameDecoder dec;
  EXPECT_THROW(dec.feed("GET / HTTP/1.1\r\n", 16), ProtocolError);
}

TEST(Frame, ShortGarbagePrefixThrows) {
  FrameDecoder dec;
  EXPECT_THROW(dec.feed("XK", 2), ProtocolError);
}

TEST(Frame, OversizedLengthThrows) {
  std::string header(kFrameMagic, 4);
  const std::uint32_t huge = kMaxFramePayload + 1;
  char len[4];
  std::memcpy(len, &huge, 4);
  header.append(len, 4);
  FrameDecoder dec;
  EXPECT_THROW(dec.feed(header), ProtocolError);
}

TEST(Frame, MaxPayloadLengthIsAccepted) {
  std::string header(kFrameMagic, 4);
  const std::uint32_t max = kMaxFramePayload;
  char len[4];
  std::memcpy(len, &max, 4);
  header.append(len, 4);
  FrameDecoder dec;
  EXPECT_NO_THROW(dec.feed(header));  // torn, not corrupt: waits for payload
  EXPECT_FALSE(dec.next().has_value());
}

TEST(Frame, PoisonedDecoderStaysPoisoned) {
  FrameDecoder dec;
  EXPECT_THROW(dec.feed("junk-that-is-not-a-frame", 24), ProtocolError);
  // Even valid bytes cannot resurrect it: a corrupt length prefix
  // means the stream position is unknowable.
  EXPECT_THROW(dec.feed(encode_frame("ok")), ProtocolError);
  EXPECT_THROW(dec.next(), ProtocolError);
}

TEST(Frame, GarbageAfterValidFrameThrowsOnlyWhenReached) {
  FrameDecoder dec;
  dec.feed(encode_frame("good"));
  const auto msg = dec.next();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(*msg, "good");
  EXPECT_THROW(dec.feed("ZZZZZZZZ", 8), ProtocolError);
}

}  // namespace
}  // namespace gks::dist
