#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "hash/md5.h"
#include "service/job_manager.h"

namespace gks::service {
namespace {

// Every test drives the manager as a pure coordinator: no local scan
// threads, the keyspace is consumed exclusively through the lease
// API, and "time" is whatever doubles the test passes in.

JobSpec md5_job(const std::string& name, const std::string& key,
                unsigned max_length = 3) {
  JobSpec spec;
  spec.name = name;
  spec.request.algorithm = hash::Algorithm::kMd5;
  spec.request.target_hexes = {hash::Md5::digest(key).to_hex()};
  spec.request.charset = keyspace::Charset::lower();
  spec.request.min_length = 1;
  spec.request.max_length = max_length;
  return spec;
}

TEST(Lease, GrantRespectsMaxIdsAndChargesTheJob) {
  JobServiceConfig config;
  config.local_scan = false;
  JobManager m(config);
  const JobId id = m.submit(md5_job("a", "dog"));
  const auto grant = m.lease("w#1", u128(100), /*deadline=*/10.0);
  ASSERT_TRUE(grant.has_value());
  EXPECT_EQ(grant->job, id);
  EXPECT_EQ(grant->job_name, "a");
  EXPECT_LE(grant->interval.size(), u128(100));
  EXPECT_GT(grant->interval.size(), u128(0));
  EXPECT_TRUE(m.lease_live(grant->lease_id));
  EXPECT_EQ(m.lease_count(), 1u);
  EXPECT_EQ(m.status(id).state, JobState::kRunning);
}

TEST(Lease, NothingRunnableYieldsNullopt) {
  JobServiceConfig config;
  config.local_scan = false;
  JobManager m(config);
  EXPECT_FALSE(m.lease("w#1", u128(100), 10.0).has_value());
}

TEST(Lease, LeaseRetireLoopRunsJobToDone) {
  JobServiceConfig config;
  config.local_scan = false;
  JobManager m(config);
  const JobId id = m.submit(md5_job("a", "abc"));
  const std::string digest = hash::Md5::digest("abc").to_hex();

  // A perfect worker: retire each lease fully; report the planted key
  // when its interval covers it (we cheat and report it on the first
  // retire — the manager only checks the digest, not the position).
  bool reported = false;
  std::size_t rounds = 0;
  while (auto grant = m.lease("w#1", u128(1) << 16, 10.0)) {
    std::vector<std::pair<std::string, std::string>> found;
    if (!reported) {
      found = {{digest, "abc"}};
      reported = true;
    }
    EXPECT_TRUE(m.retire_lease(grant->lease_id, grant->interval.size(),
                               found, 0.01));
    ASSERT_LT(++rounds, 10000u);
  }
  ASSERT_TRUE(m.wait(id, 5.0));
  const JobSnapshot s = m.status(id);
  EXPECT_EQ(s.state, JobState::kDone);
  EXPECT_EQ(s.targets_found, 1u);
  ASSERT_EQ(s.found.size(), 1u);
  EXPECT_EQ(s.found[0].second, "abc");
}

TEST(Lease, ExpiryReturnsIntervalForRedispatch) {
  JobServiceConfig config;
  config.local_scan = false;
  JobManager m(config);
  const JobId id = m.submit(md5_job("a", "dog"));
  const auto first = m.lease("w#1", u128(1000), /*deadline=*/1.0);
  ASSERT_TRUE(first.has_value());

  EXPECT_EQ(m.expire_leases(/*now=*/0.5), 0u);  // not yet
  EXPECT_EQ(m.expire_leases(/*now=*/2.0), 1u);
  EXPECT_FALSE(m.lease_live(first->lease_id));
  EXPECT_EQ(m.status(id).leases_expired, 1u);

  // The reclaimed ids are the very next thing dispatched.
  const auto second = m.lease("w#2", u128(1000), 10.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->interval.begin, first->interval.begin);
}

TEST(Lease, LateRetireIsRejectedHarmlessly) {
  JobServiceConfig config;
  config.local_scan = false;
  JobManager m(config);
  const JobId id = m.submit(md5_job("a", "dog"));
  const auto grant = m.lease("w#1", u128(1000), 1.0);
  ASSERT_TRUE(grant.has_value());
  ASSERT_EQ(m.expire_leases(2.0), 1u);

  const u128 before = m.status(id).scanned;
  EXPECT_FALSE(
      m.retire_lease(grant->lease_id, grant->interval.size(), {}, 0.01));
  EXPECT_EQ(m.status(id).scanned, before);  // no coverage from the dead
  EXPECT_FALSE(m.retire_lease(9999, u128(1)));  // unknown id, same answer
}

TEST(Lease, HeartbeatRenewalNeverMovesDeadlinesBackwards) {
  JobServiceConfig config;
  config.local_scan = false;
  JobManager m(config);
  m.submit(md5_job("a", "dog"));
  const auto grant = m.lease("w#1", u128(1000), /*deadline=*/5.0);
  ASSERT_TRUE(grant.has_value());

  EXPECT_EQ(m.renew_leases("w#1", /*deadline=*/3.0), 1u);  // counted...
  EXPECT_EQ(m.expire_leases(4.0), 0u);  // ...but the deadline held at 5

  EXPECT_EQ(m.renew_leases("w#1", 10.0), 1u);
  EXPECT_EQ(m.expire_leases(6.0), 0u);
  EXPECT_EQ(m.expire_leases(11.0), 1u);
  EXPECT_EQ(m.renew_leases("w#1", 20.0), 0u);  // nothing left to renew
}

TEST(Lease, RevokeReclaimsEveryLeaseOfTheHolder) {
  JobServiceConfig config;
  config.local_scan = false;
  JobManager m(config);
  m.submit(md5_job("a", "dog"));
  const auto g1 = m.lease("w#1", u128(100), 10.0);
  const auto g2 = m.lease("w#1", u128(100), 10.0);
  const auto g3 = m.lease("w#2", u128(100), 10.0);
  ASSERT_TRUE(g1 && g2 && g3);

  EXPECT_EQ(m.revoke_leases("w#1"), 2u);
  EXPECT_FALSE(m.lease_live(g1->lease_id));
  EXPECT_FALSE(m.lease_live(g2->lease_id));
  EXPECT_TRUE(m.lease_live(g3->lease_id));
  EXPECT_EQ(m.lease_count(), 1u);
}

TEST(Lease, ReportFoundIsExactlyOnceAcrossLeases) {
  JobServiceConfig config;
  config.local_scan = false;
  JobManager m(config);
  const JobId id = m.submit(md5_job("a", "abc", /*max_length=*/4));
  const std::string digest = hash::Md5::digest("abc").to_hex();
  const auto g1 = m.lease("w#1", u128(100), 10.0);
  const auto g2 = m.lease("w#2", u128(100), 10.0);
  ASSERT_TRUE(g1 && g2);

  EXPECT_EQ(m.report_found(g1->lease_id, digest, "abc"),
            FoundOutcome::kApplied);
  EXPECT_EQ(m.report_found(g2->lease_id, digest, "abc"),
            FoundOutcome::kDuplicate);  // live, but dup
  const JobSnapshot s = m.status(id);
  EXPECT_EQ(s.targets_found, 1u);  // the witness: counted once
  EXPECT_EQ(s.found.size(), 1u);

  m.expire_leases(20.0);
  EXPECT_EQ(m.report_found(g1->lease_id, digest, "abc"),
            FoundOutcome::kNoLease);  // dead lease
}

TEST(Lease, ForgedFoundNeverReachesTheJournalOrTheCount) {
  JobServiceConfig config;
  config.local_scan = false;
  JobManager m(config);
  const JobId id = m.submit(md5_job("a", "abc"));
  const std::string digest = hash::Md5::digest("abc").to_hex();
  const auto grant = m.lease("w#1", u128(100), 10.0);
  ASSERT_TRUE(grant.has_value());

  // A real target digest with a fabricated preimage: the manager must
  // recompute H("xyz"), see the mismatch, and refuse — this is the
  // report a buggy or malicious worker would use to poison results.
  EXPECT_EQ(m.report_found(grant->lease_id, digest, "xyz"),
            FoundOutcome::kForged);
  EXPECT_EQ(m.report_found(grant->lease_id, "zzzz-not-hex", "abc"),
            FoundOutcome::kForged);
  EXPECT_EQ(m.status(id).targets_found, 0u);
  EXPECT_TRUE(m.status(id).found.empty());

  // Forged recoveries piggybacked on a retire are counted out-of-band
  // and contribute no coverage of the target set either.
  std::size_t forged = 0;
  ASSERT_TRUE(m.retire_lease(grant->lease_id, grant->interval.size(),
                             {{digest, "nope"}}, 0.01, &forged));
  EXPECT_EQ(forged, 1u);
  EXPECT_EQ(m.status(id).targets_found, 0u);

  // The honest report still lands.
  const auto g2 = m.lease("w#1", u128(100), 10.0);
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(m.report_found(g2->lease_id, digest, "abc"),
            FoundOutcome::kApplied);
  EXPECT_EQ(m.status(id).targets_found, 1u);
}

TEST(Lease, CancelReclaimsOutstandingLeases) {
  JobServiceConfig config;
  config.local_scan = false;
  JobManager m(config);
  const JobId id = m.submit(md5_job("a", "dog"));
  const auto grant = m.lease("w#1", u128(1000), 10.0);
  ASSERT_TRUE(grant.has_value());

  m.cancel(id);
  ASSERT_TRUE(m.wait(id, 5.0));
  EXPECT_EQ(m.status(id).state, JobState::kCancelled);
  EXPECT_FALSE(m.lease_live(grant->lease_id));
  EXPECT_EQ(m.status(id).leases_expired, 0u);  // reclaimed, not expired
  EXPECT_FALSE(m.lease("w#1", u128(1000), 10.0).has_value());
}

TEST(Lease, AddTargetsBumpsGenerationAndReclaimsLiveLeases) {
  JobServiceConfig config;
  config.local_scan = false;
  JobManager m(config);
  const JobId id = m.submit(md5_job("a", "dog"));

  const auto g1 = m.lease("w#1", u128(1000), 10.0);
  ASSERT_TRUE(g1.has_value());
  EXPECT_EQ(g1->target_gen, 0u);

  // The holder of g1 is scanning with the old target set; retiring its
  // interval as covered would skip "cat" forever. The add must pull
  // the lease back so the interval re-dispatches under the new
  // generation.
  const auto out = m.add_targets(id, {hash::Md5::digest("cat").to_hex()});
  EXPECT_EQ(out.attached, 1u);
  EXPECT_FALSE(m.lease_live(g1->lease_id));
  EXPECT_EQ(m.status(id).leases_expired, 0u);  // reclaimed, not expired

  const auto g2 = m.lease("w#1", u128(1000), 10.0);
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(g2->target_gen, 1u);
  EXPECT_EQ(g2->interval.begin, g1->interval.begin);  // same ids, rescanned

  // An add that attaches nothing (digest already present) leaves the
  // generation and the live lease alone.
  const auto dup = m.add_targets(id, {hash::Md5::digest("cat").to_hex()});
  EXPECT_EQ(dup.attached, 0u);
  EXPECT_TRUE(m.lease_live(g2->lease_id));
  ASSERT_TRUE(m.retire_lease(g2->lease_id, g2->interval.size()));
  const auto g3 = m.lease("w#1", u128(1000), 10.0);
  ASSERT_TRUE(g3.has_value());
  EXPECT_EQ(g3->target_gen, 1u);
}

TEST(Lease, RemoveTargetsBumpsGenerationWithoutReclaim) {
  JobServiceConfig config;
  config.local_scan = false;
  JobManager m(config);
  JobSpec spec = md5_job("a", "dog");
  spec.request.target_hexes.push_back(hash::Md5::digest("cat").to_hex());
  const JobId id = m.submit(spec);

  const auto g1 = m.lease("w#1", u128(1000), 10.0);
  ASSERT_TRUE(g1.has_value());
  EXPECT_EQ(m.remove_targets(id, {hash::Md5::digest("cat").to_hex()}), 1u);
  // Scanning on with a digest removed wastes cycles but breaks
  // nothing, so the lease survives; the next grant carries the new
  // generation and triggers a spec re-send.
  EXPECT_TRUE(m.lease_live(g1->lease_id));
  ASSERT_TRUE(m.retire_lease(g1->lease_id, g1->interval.size()));
  const auto g2 = m.lease("w#1", u128(1000), 10.0);
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(g2->target_gen, 1u);
}

TEST(Lease, FindOrSubmitIsIdempotentByName) {
  JobServiceConfig config;
  config.local_scan = false;
  JobManager m(config);
  const JobId first = m.find_or_submit(md5_job("a", "dog"));
  EXPECT_EQ(m.find_or_submit(md5_job("a", "dog")), first);
  EXPECT_NE(m.find_or_submit(md5_job("b", "dog")), first);
  EXPECT_EQ(m.snapshot_all().size(), 2u);

  // Attaches to finished jobs too (the documented remote-submit
  // contract: rerunning a done sweep needs a fresh name).
  m.cancel(first);
  ASSERT_TRUE(m.wait(first, 5.0));
  EXPECT_EQ(m.find_or_submit(md5_job("a", "dog")), first);
}

TEST(Lease, FindOrSubmitSurvivesConcurrentRacers) {
  JobServiceConfig config;
  config.local_scan = false;
  JobManager m(config);
  constexpr int kRacers = 8;
  std::vector<JobId> ids(kRacers, 0);
  std::vector<std::thread> threads;
  threads.reserve(kRacers);
  for (int i = 0; i < kRacers; ++i) {
    threads.emplace_back(
        [&, i] { ids[i] = m.find_or_submit(md5_job("a", "dog")); });
  }
  for (std::thread& t : threads) t.join();
  for (const JobId id : ids) EXPECT_EQ(id, ids[0]);
  EXPECT_EQ(m.snapshot_all().size(), 1u);
}

TEST(Lease, WireSpecCarriesCurrentTargetsAndRecoveries) {
  JobServiceConfig config;
  config.local_scan = false;
  JobManager m(config);
  const std::string abc = hash::Md5::digest("abc").to_hex();
  const std::string dog = hash::Md5::digest("dog").to_hex();
  JobSpec spec = md5_job("a", "abc");
  spec.request.target_hexes.push_back(dog);
  const JobId id = m.submit(spec);

  const auto grant = m.lease("w#1", u128(100), 10.0);
  ASSERT_TRUE(grant.has_value());
  ASSERT_EQ(m.report_found(grant->lease_id, abc, "abc"),
            FoundOutcome::kApplied);

  std::vector<std::pair<std::string, std::string>> found;
  const JobSpec wire = m.wire_spec(id, &found);
  EXPECT_EQ(wire.request.target_hexes.size(), 2u);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].first, abc);
  EXPECT_EQ(found[0].second, "abc");
}

}  // namespace
}  // namespace gks::service
