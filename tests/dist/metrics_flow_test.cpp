// Telemetry flow across the wire: worker registry snapshots ride
// heartbeat/retire piggybacks into the coordinator's per-worker view,
// the `metrics` verb serves that view to any client, and the
// Prometheus rendering labels every series by origin. All counters are
// asserted with >= because the binary shares one process-global
// registry across tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/coordinator.h"
#include "dist/protocol.h"
#include "dist/tcp_transport.h"
#include "dist/worker_daemon.h"
#include "hash/md5.h"
#include "obs/metrics.h"
#include "service/job_manager.h"
#include "support/json.h"

namespace gks::dist {
namespace {

service::JobSpec planted_job(const std::string& name,
                             const std::string& key) {
  service::JobSpec spec;
  spec.name = name;
  spec.request.algorithm = hash::Algorithm::kMd5;
  spec.request.target_hexes = {hash::Md5::digest(key).to_hex()};
  spec.request.charset = keyspace::Charset::lower();
  spec.request.min_length = 1;
  spec.request.max_length = 4;
  return spec;
}

service::JobServiceConfig coordinator_only() {
  service::JobServiceConfig config;
  config.local_scan = false;
  return config;
}

CoordinatorConfig fast_coordinator() {
  CoordinatorConfig config;
  config.lease_s = 1.0;
  config.heartbeat_s = 0.25;
  config.idle_retry_s = 0.05;
  config.reap_interval_s = 0.05;
  config.max_lease = u128(1) << 20;
  return config;
}

const WorkerMetricsWire* find_worker(const MetricsRespMsg& view,
                                     const std::string& name) {
  for (const WorkerMetricsWire& w : view.workers) {
    if (w.name == name) return &w;
  }
  return nullptr;
}

TEST(MetricsFlow, ProtocolRoundTripsSnapshots) {
  obs::Registry reg;
  reg.counter("gks_worker_leases_completed_total").add(3);
  reg.gauge("gks_worker_keys_per_s").set(2.5e6);
  reg.histogram("gks_worker_rtt_seconds").observe(1e-4);

  // Retire and heartbeat carry the snapshot as an optional member.
  RetireMsg retire;
  retire.lease_id = 4;
  retire.tested = u128(100);
  retire.metrics = reg.snapshot();
  const RetireMsg retire_back = retire_from_json(json::parse(encode(retire)));
  ASSERT_TRUE(retire_back.metrics.has_value());
  EXPECT_EQ(retire_back.metrics->counter_or(
                "gks_worker_leases_completed_total"),
            3u);
  EXPECT_DOUBLE_EQ(retire_back.metrics->gauge_or("gks_worker_keys_per_s"),
                   2.5e6);

  HeartbeatMsg hb;
  hb.metrics = reg.snapshot();
  const HeartbeatMsg hb_back = heartbeat_from_json(json::parse(encode(hb)));
  ASSERT_TRUE(hb_back.metrics.has_value());
  ASSERT_NE(hb_back.metrics->histogram("gks_worker_rtt_seconds"), nullptr);
  EXPECT_EQ(hb_back.metrics->histogram("gks_worker_rtt_seconds")->count(),
            1u);

  // Bye carries the session's final snapshot (the one the last
  // retire's ack-bumped counters can only appear in).
  ByeMsg bye;
  bye.metrics = reg.snapshot();
  const ByeMsg bye_back = bye_from_json(json::parse(encode(bye)));
  ASSERT_TRUE(bye_back.metrics.has_value());
  EXPECT_EQ(bye_back.metrics->counter_or(
                "gks_worker_leases_completed_total"),
            3u);

  // Pre-telemetry peers omit the member entirely; decoding tolerates it.
  const HeartbeatMsg bare =
      heartbeat_from_json(json::parse("{\"type\":\"heartbeat\"}"));
  EXPECT_FALSE(bare.metrics.has_value());
  EXPECT_FALSE(
      bye_from_json(json::parse("{\"type\":\"bye\"}")).metrics.has_value());
  const RetireMsg bare_retire = retire_from_json(json::parse(
      "{\"type\":\"retire\",\"lease\":1,\"tested\":\"5\"}"));
  EXPECT_FALSE(bare_retire.metrics.has_value());

  // The metrics verb and its response.
  EXPECT_EQ(message_type(json::parse(encode(MetricsMsg{}))), "metrics");
  MetricsRespMsg resp;
  resp.coordinator = reg.snapshot();
  resp.workers.push_back({"w0", 1.5, reg.snapshot()});
  const MetricsRespMsg back =
      metrics_resp_from_json(json::parse(encode(resp)));
  EXPECT_EQ(back.coordinator.counter_or(
                "gks_worker_leases_completed_total"),
            3u);
  ASSERT_EQ(back.workers.size(), 1u);
  EXPECT_EQ(back.workers[0].name, "w0");
  EXPECT_DOUBLE_EQ(back.workers[0].age_s, 1.5);
  EXPECT_EQ(back.workers[0].metrics.counter_or(
                "gks_worker_leases_completed_total"),
            3u);
}

// A worker's piggybacked snapshot must land in the coordinator's view
// keyed by worker name, survive a reconnect under the same name (one
// entry, latest snapshot — not a stale or duplicated row), and be
// served both by the `metrics` wire verb and the Prometheus text.
TEST(MetricsFlow, WorkerSnapshotsReachTheClusterView) {
  obs::set_enabled(true);
  service::JobManager manager(coordinator_only());
  const auto first = manager.submit(planted_job("alpha", "abc"));

  TcpTransport transport;
  Coordinator coordinator(manager, transport, fast_coordinator());
  coordinator.start("127.0.0.1:0");

  WorkerConfig wcfg;
  wcfg.name = "w";
  wcfg.threads = 2;
  {
    WorkerDaemon worker(transport, wcfg);
    std::thread wt([&] { worker.run(coordinator.address()); });
    ASSERT_TRUE(manager.wait(first, 60.0));
    worker.stop();
    wt.join();
  }

  const MetricsRespMsg after_first = coordinator.cluster_metrics();
  const WorkerMetricsWire* w = find_worker(after_first, "w");
  ASSERT_NE(w, nullptr) << "retire piggyback never reached the view";
  const std::uint64_t completed_first =
      w->metrics.counter_or("gks_worker_leases_completed_total");
  EXPECT_GE(completed_first, 1u);
  // The piggyback is the whole process registry, so sweep-layer
  // counters ride along with the daemon's own.
  EXPECT_GE(w->metrics.counter_or("gks_sweep_keys_total"), 1u);
  ASSERT_NE(w->metrics.histogram("gks_worker_lease_seconds"), nullptr);
  EXPECT_GE(w->metrics.histogram("gks_worker_lease_seconds")->count(), 1u);
  EXPECT_GE(w->age_s, 0.0);
  // Coordinator-side series live in the coordinator snapshot.
  EXPECT_GE(after_first.coordinator.counter_or("gks_coord_sessions_total"),
            1u);
  EXPECT_GE(after_first.coordinator.counter_or("gks_lease_retired_total"),
            1u);

  // Same name reconnects (fresh daemon, fresh session): still exactly
  // one "w" row, and it carries the newer counters.
  const auto second = manager.submit(planted_job("beta", "dog"));
  {
    WorkerDaemon worker(transport, wcfg);
    std::thread wt([&] { worker.run(coordinator.address()); });
    ASSERT_TRUE(manager.wait(second, 60.0));
    worker.stop();
    wt.join();
  }
  const MetricsRespMsg after_second = coordinator.cluster_metrics();
  EXPECT_EQ(std::count_if(after_second.workers.begin(),
                          after_second.workers.end(),
                          [](const WorkerMetricsWire& e) {
                            return e.name == "w";
                          }),
            1);
  const WorkerMetricsWire* w2 = find_worker(after_second, "w");
  ASSERT_NE(w2, nullptr);
  EXPECT_GT(w2->metrics.counter_or("gks_worker_leases_completed_total"),
            completed_first);
  EXPECT_GE(w2->metrics.counter_or("gks_worker_hellos_total"), 2u);

  // The same view over the wire: hello, then the metrics verb.
  {
    auto conn = transport.connect(coordinator.address(), 5.0);
    HelloMsg hello;
    hello.name = "observer";
    hello.threads = 0;
    conn->send(encode(hello));
    const auto welcome = conn->recv(5.0);
    ASSERT_TRUE(welcome.has_value());
    conn->send(encode(MetricsMsg{}));
    const auto reply = conn->recv(5.0);
    ASSERT_TRUE(reply.has_value());
    const json::Value v = json::parse(*reply);
    ASSERT_EQ(message_type(v), "metrics_resp");
    const MetricsRespMsg wire = metrics_resp_from_json(v);
    const WorkerMetricsWire* ww = find_worker(wire, "w");
    ASSERT_NE(ww, nullptr);
    EXPECT_EQ(ww->metrics.counter_or("gks_worker_leases_completed_total"),
              w2->metrics.counter_or("gks_worker_leases_completed_total"));
    EXPECT_GE(wire.coordinator.counter_or("gks_coord_sessions_total"), 2u);
  }

  // Prometheus rendering spans both origins with their labels.
  const std::string text = coordinator.prometheus_text();
  EXPECT_NE(text.find("gks_coord_sessions_total{node=\"coordinator\"}"),
            std::string::npos);
  EXPECT_NE(text.find("gks_worker_leases_completed_total{worker=\"w\"}"),
            std::string::npos);
  EXPECT_NE(text.find("gks_worker_lease_seconds_bucket{worker=\"w\","),
            std::string::npos);

  coordinator.stop();
}

// With telemetry globally disabled, workers piggyback nothing and the
// cluster still cracks keys — the wire tolerates absent snapshots end
// to end, not just in the decoder unit test.
TEST(MetricsFlow, DisabledTelemetryLeavesTheProtocolWorking) {
  obs::set_enabled(false);
  service::JobManager manager(coordinator_only());
  const auto id = manager.submit(planted_job("gamma", "cat"));

  TcpTransport transport;
  Coordinator coordinator(manager, transport, fast_coordinator());
  coordinator.start("127.0.0.1:0");

  WorkerConfig wcfg;
  wcfg.name = "dark";
  wcfg.threads = 2;
  WorkerDaemon worker(transport, wcfg);
  std::thread wt([&] { worker.run(coordinator.address()); });
  ASSERT_TRUE(manager.wait(id, 60.0));
  worker.stop();
  wt.join();

  const MetricsRespMsg view = coordinator.cluster_metrics();
  EXPECT_EQ(find_worker(view, "dark"), nullptr);
  coordinator.stop();
  obs::set_enabled(true);

  EXPECT_EQ(manager.status(id).state, service::JobState::kDone);
}

}  // namespace
}  // namespace gks::dist
