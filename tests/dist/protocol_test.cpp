#include "dist/protocol.h"

#include <gtest/gtest.h>

#include <string>

#include "hash/md5.h"
#include "support/error.h"
#include "support/json.h"

namespace gks::dist {
namespace {

service::JobSpec sample_spec() {
  service::JobSpec spec;
  spec.name = "wire";
  spec.request.algorithm = hash::Algorithm::kMd5;
  spec.request.target_hexes = {hash::Md5::digest("abc").to_hex(),
                               hash::Md5::digest("dog").to_hex()};
  spec.request.charset = keyspace::Charset::lower();
  spec.request.min_length = 1;
  spec.request.max_length = 4;
  spec.request.salt = {hash::SaltPosition::kSuffix, "pepper"};
  spec.priority = 3;
  spec.weight = 2.0;
  return spec;
}

TEST(Protocol, MessageTypeRequiresTypeField) {
  EXPECT_EQ(message_type(json::parse("{\"type\":\"hello\"}")), "hello");
  EXPECT_THROW(message_type(json::parse("{\"x\":1}")), Error);
}

TEST(Protocol, HelloRoundTrips) {
  HelloMsg m;
  m.name = "worker-7";
  m.threads = 12;
  const json::Value v = json::parse(encode(m));
  EXPECT_EQ(message_type(v), "hello");
  const HelloMsg back = hello_from_json(v);
  EXPECT_EQ(back.version, kProtocolVersion);
  EXPECT_EQ(back.name, "worker-7");
  EXPECT_EQ(back.threads, 12);
}

TEST(Protocol, WelcomeRoundTrips) {
  WelcomeMsg m;
  m.lease_s = 3.5;
  m.heartbeat_s = 0.75;
  m.holder = "worker-7#42";
  const WelcomeMsg back = welcome_from_json(json::parse(encode(m)));
  EXPECT_EQ(back.lease_s, 3.5);
  EXPECT_EQ(back.heartbeat_s, 0.75);
  EXPECT_EQ(back.holder, "worker-7#42");
}

TEST(Protocol, LeaseRequestCarriesU128AsDecimalString) {
  LeaseRequestMsg m;
  m.max_ids = (u128(1) << 80) + u128(17);
  const json::Value v = json::parse(encode(m));
  const LeaseRequestMsg back = lease_request_from_json(v);
  EXPECT_EQ(back.max_ids, m.max_ids);
}

TEST(Protocol, LeaseGrantWithSpecRoundTrips) {
  LeaseGrantWire m;
  m.lease_id = 9;
  m.job = 2;
  m.job_name = "wire";
  m.begin = u128(1) << 70;
  m.end = (u128(1) << 70) + u128(1000000);
  m.target_gen = 7;
  m.has_spec = true;
  m.spec = sample_spec();
  m.spec_found = {{hash::Md5::digest("abc").to_hex(), "abc"}};
  m.dead = {{"other", "00ff", "k", 41}};
  const LeaseGrantWire back = lease_grant_from_json(json::parse(encode(m)));
  EXPECT_EQ(back.lease_id, 9u);
  EXPECT_EQ(back.job, 2u);
  EXPECT_EQ(back.job_name, "wire");
  EXPECT_EQ(back.begin, m.begin);
  EXPECT_EQ(back.end, m.end);
  EXPECT_EQ(back.target_gen, 7u);
  ASSERT_TRUE(back.has_spec);
  EXPECT_EQ(back.spec.name, "wire");
  EXPECT_EQ(back.spec.request.target_hexes, m.spec.request.target_hexes);
  EXPECT_EQ(back.spec.request.charset, keyspace::Charset::lower());
  EXPECT_EQ(back.spec.request.salt.salt, "pepper");
  EXPECT_EQ(back.spec.priority, 3);
  EXPECT_EQ(back.spec.weight, 2.0);
  ASSERT_EQ(back.spec_found.size(), 1u);
  EXPECT_EQ(back.spec_found[0].second, "abc");
  ASSERT_EQ(back.dead.size(), 1u);
  EXPECT_EQ(back.dead[0].job, "other");
  EXPECT_EQ(back.dead[0].job_id, 41u);
}

TEST(Protocol, LeaseGrantWithoutSpecOmitsIt) {
  LeaseGrantWire m;
  m.lease_id = 1;
  m.job = 1;
  m.job_name = "wire";
  m.end = u128(10);
  const LeaseGrantWire back = lease_grant_from_json(json::parse(encode(m)));
  EXPECT_FALSE(back.has_spec);
  EXPECT_TRUE(back.spec_found.empty());
  EXPECT_TRUE(back.dead.empty());
}

TEST(Protocol, RetireRoundTripsFoundPairs) {
  RetireMsg m;
  m.lease_id = 5;
  m.tested = u128(123456789);
  m.busy_s = 0.25;
  m.found = {{"aa", "keyA"}, {"bb", "keyB"}};
  const RetireMsg back = retire_from_json(json::parse(encode(m)));
  EXPECT_EQ(back.lease_id, 5u);
  EXPECT_EQ(back.tested, u128(123456789));
  EXPECT_EQ(back.busy_s, 0.25);
  ASSERT_EQ(back.found.size(), 2u);
  EXPECT_EQ(back.found[1].first, "bb");
  EXPECT_EQ(back.found[1].second, "keyB");
}

TEST(Protocol, AckRoundTripsCancelledAndDead) {
  AckMsg m;
  m.ok = false;
  m.error = "lease expired";
  m.cancelled = {3, 4};
  m.dead = {{"j", "dd", "kk", 6}};
  m.id = 7;
  const AckMsg back = ack_from_json(json::parse(encode(m)));
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.error, "lease expired");
  EXPECT_EQ(back.cancelled, (std::vector<std::uint64_t>{3, 4}));
  ASSERT_EQ(back.dead.size(), 1u);
  EXPECT_EQ(back.dead[0].digest, "dd");
  EXPECT_EQ(back.dead[0].job_id, 6u);
  EXPECT_EQ(back.id, 7u);
}

TEST(Protocol, SubmitCancelTargetsStatusRoundTrip) {
  SubmitMsg submit;
  submit.spec = sample_spec();
  const SubmitMsg s = submit_from_json(json::parse(encode(submit)));
  EXPECT_EQ(s.spec.name, "wire");
  EXPECT_EQ(s.spec.request.target_hexes.size(), 2u);

  const CancelMsg c =
      cancel_from_json(json::parse(encode(CancelMsg{"wire"})));
  EXPECT_EQ(c.job, "wire");

  TargetsMsg t;
  t.job = "wire";
  t.add = {"0011"};
  t.remove = {"2233", "4455"};
  const TargetsMsg tb = targets_from_json(json::parse(encode(t)));
  EXPECT_EQ(tb.job, "wire");
  EXPECT_EQ(tb.add, (std::vector<std::string>{"0011"}));
  EXPECT_EQ(tb.remove, (std::vector<std::string>{"2233", "4455"}));

  const StatusMsg st = status_from_json(json::parse(encode(StatusMsg{})));
  EXPECT_TRUE(st.job.empty());
}

TEST(Protocol, StatusRespCarriesSnapshots) {
  StatusRespMsg m;
  service::JobSnapshot snap;
  snap.name = "wire";
  snap.state = service::JobState::kRunning;
  snap.space = u128(1000);
  snap.scanned = u128(250);
  snap.targets_total = 2;
  snap.targets_found = 1;
  snap.found = {{"aa", "abc"}};
  m.jobs.push_back(snap);
  const StatusRespMsg back = status_resp_from_json(json::parse(encode(m)));
  ASSERT_EQ(back.jobs.size(), 1u);
  EXPECT_EQ(back.jobs[0].name, "wire");
  EXPECT_EQ(back.jobs[0].state, service::JobState::kRunning);
  EXPECT_EQ(back.jobs[0].scanned, u128(250));
  EXPECT_EQ(back.jobs[0].targets_found, 1u);
  ASSERT_EQ(back.jobs[0].found.size(), 1u);
  EXPECT_EQ(back.jobs[0].found[0].second, "abc");
}

TEST(Protocol, ErrorAndIdleRoundTrip) {
  const ErrorMsg e = error_from_json(json::parse(encode(ErrorMsg{"boom"})));
  EXPECT_EQ(e.error, "boom");

  IdleMsg idle;
  idle.retry_s = 0.5;
  idle.dead = {{"j", "d", "k"}};
  const json::Value v = json::parse(encode(idle));
  EXPECT_EQ(message_type(v), "idle");
  const IdleMsg back = idle_from_json(v);
  EXPECT_EQ(back.retry_s, 0.5);
  ASSERT_EQ(back.dead.size(), 1u);
  EXPECT_EQ(back.dead[0].key, "k");
}

TEST(Protocol, DecoderRejectsMalformedMessages) {
  EXPECT_THROW(hello_from_json(json::parse("{\"type\":\"hello\"}")), Error);
  EXPECT_THROW(found_from_json(json::parse("{\"type\":\"found\"}")), Error);
  EXPECT_THROW(lease_grant_from_json(json::parse("{\"type\":\"lease\"}")),
               Error);
}

}  // namespace
}  // namespace gks::dist
