#include "dist/transport.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>

#include "dist/simnet_transport.h"
#include "dist/tcp_transport.h"
#include "simnet/network.h"

namespace gks::dist {
namespace {

/// One echo exchange over an already-established pair: the payload a
/// client sends is the payload the server receives, bare — framing (or
/// simnet message boundaries) must stay invisible to callers.
void expect_echo(Connection& client, Connection& server,
                 const std::string& payload) {
  client.send(payload);
  const auto got = server.recv(10.0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  server.send(*got);
  const auto back = client.recv(10.0);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
}

TEST(TcpTransport, EchoRoundTrip) {
  TcpTransport transport;
  auto listener = transport.listen("127.0.0.1:0");
  std::unique_ptr<Connection> server;
  std::thread accepter([&] { server = listener->accept(10.0); });
  auto client = transport.connect(listener->address(), 5.0);
  accepter.join();
  ASSERT_NE(server, nullptr);

  expect_echo(*client, *server, "{\"type\":\"hello\"}");
  expect_echo(*client, *server, "");  // empty message survives framing
  expect_echo(*client, *server, std::string(1 << 16, 'x'));  // multi-read
  std::string binary = "GKF1";  // payload that looks like a frame header
  binary += '\0';
  binary += "\xff\xfe";
  expect_echo(*client, *server, binary);
}

TEST(TcpTransport, BracketedHostRoundTrip) {
  TcpTransport transport;
  auto listener = transport.listen("[127.0.0.1]:0");
  // A v4 listener reports the bare form; re-wrap it to exercise the
  // client-side bracket stripping too.
  const std::string addr = listener->address();
  const auto colon = addr.rfind(':');
  const std::string bracketed =
      "[" + addr.substr(0, colon) + "]" + addr.substr(colon);
  std::unique_ptr<Connection> server;
  std::thread accepter([&] { server = listener->accept(10.0); });
  auto client = transport.connect(bracketed, 5.0);
  accepter.join();
  ASSERT_NE(server, nullptr);
  expect_echo(*client, *server, "bracketed");
}

TEST(TcpTransport, Ipv6LoopbackRoundTrip) {
  TcpTransport transport;
  std::unique_ptr<Listener> listener;
  try {
    listener = transport.listen("[::1]:0");
  } catch (const Error&) {
    GTEST_SKIP() << "IPv6 loopback unavailable in this environment";
  }
  // A v6 listener reports a *bracketed* address, so it feeds straight
  // back into connect() without the host's colons being mistaken for
  // the port separator.
  ASSERT_FALSE(listener->address().empty());
  EXPECT_EQ(listener->address().front(), '[');
  std::unique_ptr<Connection> server;
  std::thread accepter([&] { server = listener->accept(10.0); });
  auto client = transport.connect(listener->address(), 5.0);
  accepter.join();
  ASSERT_NE(server, nullptr);
  expect_echo(*client, *server, "v6");
}

TEST(TcpTransport, AcceptTimesOutWithoutConnection) {
  TcpTransport transport;
  auto listener = transport.listen("127.0.0.1:0");
  EXPECT_EQ(listener->accept(0.05), nullptr);
}

TEST(TcpTransport, ConnectToDeadPortThrows) {
  TcpTransport transport;
  // Bind-then-close yields a port that is (momentarily) not listening.
  std::string addr;
  {
    auto listener = transport.listen("127.0.0.1:0");
    addr = listener->address();
    listener->close();
  }
  EXPECT_THROW(transport.connect(addr, 0.5), TransportError);
}

TEST(TcpTransport, PeerCloseWakesRecv) {
  TcpTransport transport;
  auto listener = transport.listen("127.0.0.1:0");
  std::unique_ptr<Connection> server;
  std::thread accepter([&] { server = listener->accept(10.0); });
  auto client = transport.connect(listener->address(), 5.0);
  accepter.join();
  ASSERT_NE(server, nullptr);

  client->close();
  EXPECT_THROW(
      {
        // Either a clean nullopt never happens: a closed peer raises.
        while (server->recv(5.0).has_value()) {
        }
      },
      ConnectionClosed);
}

TEST(TcpTransport, NowAdvancesAndSleepWaits) {
  TcpTransport transport;
  const double t0 = transport.now_s();
  transport.sleep_s(0.01);
  EXPECT_GE(transport.now_s(), t0 + 0.009);
}

TEST(SimnetTransport, EchoRoundTripOverVirtualNetwork) {
  simnet::Network net(1e-3);
  const auto coord = net.add_node("coordinator");
  const auto work = net.add_node("worker");
  net.connect(coord, work);

  SimnetTransport at(net, coord);
  SimnetTransport bt(net, work);
  auto listener = at.listen("coordinator");
  std::unique_ptr<Connection> server;
  std::thread accepter([&] { server = listener->accept(30.0); });
  auto client = bt.connect("coordinator", 30.0);
  accepter.join();
  ASSERT_NE(server, nullptr);

  expect_echo(*client, *server, "{\"type\":\"hello\"}");
  expect_echo(*client, *server, std::string(4096, 'y'));
  EXPECT_EQ(server->peer(), "sim:worker");
}

TEST(SimnetTransport, DownNodeEatsTrafficSilently) {
  simnet::Network net(1e-3);
  const auto coord = net.add_node("coordinator");
  const auto work = net.add_node("worker");
  net.connect(coord, work);

  SimnetTransport at(net, coord);
  SimnetTransport bt(net, work);
  auto listener = at.listen("coordinator");
  std::unique_ptr<Connection> server;
  std::thread accepter([&] { server = listener->accept(30.0); });
  auto client = bt.connect("coordinator", 30.0);
  accepter.join();
  ASSERT_NE(server, nullptr);

  net.set_node_down(work, true);
  client->send("into the void");  // send never learns of the failure
  EXPECT_EQ(server->recv(0.5), std::nullopt);  // pure timeout, no error
}

TEST(SimnetTransport, ConnectToDownNodeTimesOut) {
  simnet::Network net(1e-3);
  const auto coord = net.add_node("coordinator");
  const auto work = net.add_node("worker");
  net.connect(coord, work);
  net.set_node_down(coord, true);

  SimnetTransport bt(net, work);
  EXPECT_THROW(bt.connect("coordinator", 0.5), TransportError);
}

}  // namespace
}  // namespace gks::dist
