// Parameterized property sweep: for every supported key length (1..20)
// and both algorithms, the optimized crack context must (a) accept the
// true key's word 0 and (b) agree with the unoptimized full-hash test
// on random candidates. This pins the reversal/early-exit algebra at
// every padding layout word 0 can take.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "hash/kernel_words.h"
#include "hash/md5.h"
#include "hash/md5_crack.h"
#include "hash/sha1.h"
#include "hash/sha1_crack.h"
#include "support/rng.h"

namespace gks::hash {
namespace {

std::string key_of_length(std::size_t len, std::uint64_t seed) {
  SplitMix64 rng(seed);
  const std::string pool =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  std::string key;
  for (std::size_t i = 0; i < len; ++i) key.push_back(pool[rng.below(62)]);
  return key;
}

class CrackLengthSweep
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(CrackLengthSweep, OptimizedKernelAgreesWithReference) {
  const auto [alg, len] = GetParam();
  const std::string key = key_of_length(len, 1000 + len + alg * 100);
  const std::string tail = key.size() > 4 ? key.substr(4) : std::string();
  SplitMix64 rng(len * 7919 + alg);

  if (alg == 0) {
    const Md5CrackContext ctx(Md5::digest(key), tail, key.size());
    EXPECT_TRUE(ctx.test(pack_md5_word0(key.data(), key.size())));
    for (int i = 0; i < 400; ++i) {
      const auto m0 = static_cast<std::uint32_t>(rng());
      EXPECT_EQ(ctx.test(m0), ctx.test_plain(m0)) << "len " << len;
    }
  } else {
    const Sha1CrackContext ctx(Sha1::digest(key), tail, key.size());
    EXPECT_TRUE(ctx.test(pack_sha_word0(key.data(), key.size())));
    for (int i = 0; i < 400; ++i) {
      const auto w0 = static_cast<std::uint32_t>(rng());
      EXPECT_EQ(ctx.test(w0), ctx.test_plain(w0)) << "len " << len;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLengths, CrackLengthSweep,
    ::testing::Combine(::testing::Values(0, 1),  // 0 = MD5, 1 = SHA1
                       ::testing::Range<std::size_t>(1, 21)),
    [](const ::testing::TestParamInfo<std::tuple<int, std::size_t>>& info) {
      return std::string(std::get<0>(info.param) == 0 ? "Md5" : "Sha1") +
             "Len" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace gks::hash
