#include "hash/kernel_words.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace gks::hash {
namespace {

TEST(KernelWords, RotlRotrAreInverses) {
  const std::uint32_t x = 0x12345678;
  for (unsigned n = 1; n < 32; ++n) {
    EXPECT_EQ(rotr(rotl(x, n), n), x) << n;
    EXPECT_EQ(rotl(x, n), rotr(x, 32 - n)) << n;
  }
}

TEST(KernelWords, PackMd5BlockIsLittleEndianWithPadding) {
  const auto b = pack_md5_block("abcd");
  EXPECT_EQ(b.words[0], 0x64636261u);  // 'a'..'d' little-endian
  EXPECT_EQ(b.words[1], 0x00000080u);  // pad byte directly after
  EXPECT_EQ(b.words[14], 32u);         // bit length
  EXPECT_EQ(b.words[15], 0u);
  EXPECT_EQ(b.length, 4u);
}

TEST(KernelWords, PackMd5BlockShortKeyPadsInsideWord0) {
  const auto b = pack_md5_block("ab");
  EXPECT_EQ(b.words[0], 0x00806261u);
  EXPECT_EQ(b.words[14], 16u);
}

TEST(KernelWords, PackMd5BlockEmptyKey) {
  const auto b = pack_md5_block("");
  EXPECT_EQ(b.words[0], 0x00000080u);
  EXPECT_EQ(b.words[14], 0u);
}

TEST(KernelWords, PackShaBlockIsBigEndian) {
  const auto b = pack_sha_block("abcd");
  EXPECT_EQ(b.words[0], 0x61626364u);
  EXPECT_EQ(b.words[1], 0x80000000u);
  EXPECT_EQ(b.words[15], 32u);
  EXPECT_EQ(b.words[14], 0u);
}

TEST(KernelWords, PackRejectsOversizedKeys) {
  const std::string long_key(56, 'x');
  EXPECT_THROW(pack_md5_block(long_key), InvalidArgument);
  EXPECT_THROW(pack_sha_block(long_key), InvalidArgument);
  EXPECT_NO_THROW(pack_md5_block(std::string(55, 'x')));
}

TEST(KernelWords, Word0FastPathMatchesFullPacking) {
  for (const char* key : {"a", "ab", "abc", "abcd", "abcdef"}) {
    const std::string_view k(key);
    EXPECT_EQ(pack_md5_word0(k.data(), k.size()),
              pack_md5_block(k).words[0])
        << key;
    EXPECT_EQ(pack_sha_word0(k.data(), k.size()), pack_sha_block(k).words[0])
        << key;
  }
}

TEST(KernelWords, MaxKernelKeyLengthFitsOneBlock) {
  EXPECT_LE(kMaxKernelKeyLength, 55u);
}

}  // namespace
}  // namespace gks::hash
