#include "hash/lane_scan.h"

#include <gtest/gtest.h>

#include <string>

#include "hash/md5.h"

namespace gks::hash {
namespace {

Md5CrackContext context_for(const std::string& key) {
  const auto target = Md5::digest(key);
  const std::string tail = key.size() > 4 ? key.substr(4) : std::string();
  return Md5CrackContext(target, tail, key.size());
}

PrefixWord0Iterator fresh_iterator(const std::string& cs, unsigned chars,
                                   std::size_t key_len) {
  return PrefixWord0Iterator({cs.data(), cs.size()}, chars, key_len, false);
}

TEST(LaneScan, AgreesWithScalarOnHitOffset) {
  const std::string cs = "abcdef";
  for (const std::string key : {"aaaa", "fade", "cafe", "feed"}) {
    const auto ctx = context_for(key);
    auto scalar_it = fresh_iterator(cs, 4, 4);
    auto lanes_it = fresh_iterator(cs, 4, 4);
    const auto scalar = md5_scan_prefixes(ctx, scalar_it, 1296);
    const auto lanes = md5_scan_prefixes_lanes(ctx, lanes_it, 1296);
    ASSERT_EQ(scalar.has_value(), lanes.has_value()) << key;
    if (scalar) {
      EXPECT_EQ(*scalar, *lanes) << key;
      // Both engines leave the iterator just past the hit.
      EXPECT_EQ(scalar_it.word0(), lanes_it.word0()) << key;
    }
  }
}

TEST(LaneScan, AgreesWithScalarOnMiss) {
  const std::string cs = "abc";
  const auto ctx = context_for("zzzz");  // not in the charset
  auto scalar_it = fresh_iterator(cs, 4, 4);
  auto lanes_it = fresh_iterator(cs, 4, 4);
  EXPECT_FALSE(md5_scan_prefixes(ctx, scalar_it, 81).has_value());
  EXPECT_FALSE(md5_scan_prefixes_lanes(ctx, lanes_it, 81).has_value());
  EXPECT_EQ(scalar_it.word0(), lanes_it.word0());
}

TEST(LaneScan, CountsBelowOneBlockFallBackCorrectly) {
  const std::string cs = "abcdef";
  const auto ctx = context_for("bada");
  auto it = fresh_iterator(cs, 4, 4);
  // Hit is at offset (encode of "bada" prefix-major): scan in counts
  // smaller than kScanLanes so only the scalar tail runs.
  std::uint64_t total = 0;
  std::optional<std::uint64_t> hit;
  while (total < 1296 && !hit) {
    hit = md5_scan_prefixes_lanes(ctx, it, 5);
    if (!hit) total += 5;
  }
  ASSERT_TRUE(hit.has_value());
  // Verify against a single scalar scan.
  auto ref_it = fresh_iterator(cs, 4, 4);
  const auto ref = md5_scan_prefixes(ctx, ref_it, 1296);
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(total + *hit, *ref);
}

TEST(LaneScan, ResumesAfterHitWithoutSkippingCandidates) {
  // Two keys mapping into the same scan range: after the first hit the
  // iterator must resume at hit+1 so the second is still found.
  const std::string cs = "ab";
  const auto ctx = context_for("aa");  // hit at offset 0
  auto it = fresh_iterator(cs, 2, 2);
  const auto first = md5_scan_prefixes_lanes(ctx, it, 4);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 0u);
  // Iterator now at "ba" (offset 1); a fresh scan over the remaining 3
  // candidates must find nothing (only "aa" matches).
  EXPECT_FALSE(md5_scan_prefixes_lanes(ctx, it, 3).has_value());
}

TEST(LaneScan, LongKeysWithTail) {
  const std::string cs = "abcdefgh";
  const std::string key = "gfedrest";
  const auto ctx = context_for(key);
  auto it = fresh_iterator(cs, 4, 8);
  const auto hit = md5_scan_prefixes_lanes(ctx, it, 4096);
  ASSERT_TRUE(hit.has_value());
  auto ref_it = fresh_iterator(cs, 4, 8);
  const auto ref = md5_scan_prefixes(ctx, ref_it, 4096);
  EXPECT_EQ(*hit, *ref);
}

}  // namespace
}  // namespace gks::hash
