#include "hash/lane.h"

#include <gtest/gtest.h>

#include "hash/kernel_words.h"
#include "hash/md5.h"
#include "hash/md5_kernel.h"
#include "hash/sha1.h"
#include "hash/sha1_kernel.h"

namespace gks::hash {
namespace {

TEST(Lane, BroadcastConstructorFillsAllLanes) {
  const Lane<std::uint32_t, 4> l(0xdeadbeef);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(l[i], 0xdeadbeefu);
}

TEST(Lane, ElementwiseOperators) {
  Lane<std::uint32_t, 2> a;
  a[0] = 0xf0f0f0f0;
  a[1] = 0x12345678;
  Lane<std::uint32_t, 2> b;
  b[0] = 0x0f0f0f0f;
  b[1] = 0x11111111;

  const auto sum = a + b;
  EXPECT_EQ(sum[0], 0xffffffffu);
  EXPECT_EQ(sum[1], 0x23456789u);

  const auto conj = a & b;
  EXPECT_EQ(conj[0], 0u);

  const auto neg = ~a;
  EXPECT_EQ(neg[0], 0x0f0f0f0fu);

  const auto rot = rotl(a, 4);
  EXPECT_EQ(rot[1], 0x23456781u);
}

template <std::size_t N>
void expect_laned_md5_matches_scalar() {
  // N different keys hashed in lockstep must each match the scalar
  // reference — the correctness contract behind the ILP interleaving.
  const char* keys[4] = {"aaaa", "bbbb", "cccc", "dddd"};
  std::array<Lane<std::uint32_t, N>, 16> m{};
  for (std::size_t w = 0; w < 16; ++w) {
    for (std::size_t lane = 0; lane < N; ++lane) {
      m[w][lane] = pack_md5_block(keys[lane]).words[w];
    }
  }
  const auto s = md5_single_block(m);
  for (std::size_t lane = 0; lane < N; ++lane) {
    const auto scalar = md5_single_block(pack_md5_block(keys[lane]).words);
    EXPECT_EQ(s.a[lane], scalar.a) << "lane " << lane;
    EXPECT_EQ(s.b[lane], scalar.b) << "lane " << lane;
    EXPECT_EQ(s.c[lane], scalar.c) << "lane " << lane;
    EXPECT_EQ(s.d[lane], scalar.d) << "lane " << lane;
  }
}

TEST(Lane, Md5TwoLanesMatchScalar) { expect_laned_md5_matches_scalar<2>(); }
TEST(Lane, Md5FourLanesMatchScalar) { expect_laned_md5_matches_scalar<4>(); }

TEST(Lane, Sha1LanesMatchScalar) {
  constexpr std::size_t N = 2;
  const char* keys[N] = {"helloKey", "worldKey"};
  std::array<Lane<std::uint32_t, N>, 16> m{};
  for (std::size_t w = 0; w < 16; ++w) {
    for (std::size_t lane = 0; lane < N; ++lane) {
      m[w][lane] = pack_sha_block(keys[lane]).words[w];
    }
  }
  const auto s = sha1_single_block(m);
  for (std::size_t lane = 0; lane < N; ++lane) {
    const auto scalar = sha1_single_block(pack_sha_block(keys[lane]).words);
    EXPECT_EQ(s.a[lane], scalar.a);
    EXPECT_EQ(s.e[lane], scalar.e);
  }
}

}  // namespace
}  // namespace gks::hash
