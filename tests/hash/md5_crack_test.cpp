#include "hash/md5_crack.h"

#include <gtest/gtest.h>

#include "support/error.h"

#include <set>
#include <string>

#include "hash/md5.h"
#include "support/rng.h"

namespace gks::hash {
namespace {

Md5CrackContext context_for(const std::string& key) {
  const auto target = Md5::digest(key);
  const std::string tail = key.size() > 4 ? key.substr(4) : std::string();
  return Md5CrackContext(target, tail, key.size());
}

TEST(Md5Crack, FindsTheMatchingPrefix) {
  const std::string key = "zxQ9rest";  // prefix "zxQ9", tail "rest"
  const auto ctx = context_for(key);
  EXPECT_TRUE(ctx.test(pack_md5_word0(key.data(), key.size())));
}

TEST(Md5Crack, RejectsNonMatchingPrefixes) {
  const auto ctx = context_for("zxQ9rest");
  EXPECT_FALSE(ctx.test(pack_md5_word0("zxQ8", 8)));
  EXPECT_FALSE(ctx.test(pack_md5_word0("aaaa", 8)));
  EXPECT_FALSE(ctx.test(0));
}

TEST(Md5Crack, OptimizedTestAgreesWithPlainTestOnRandomCandidates) {
  const auto ctx = context_for("Pa55word");
  SplitMix64 rng(2014);
  for (int i = 0; i < 5000; ++i) {
    const auto m0 = static_cast<std::uint32_t>(rng());
    EXPECT_EQ(ctx.test(m0), ctx.test_plain(m0)) << "m0=" << m0;
  }
}

TEST(Md5Crack, ShortKeysPackPaddingIntoWord0) {
  for (const std::string key : {"a", "ab", "abc"}) {
    const auto ctx = context_for(key);
    EXPECT_TRUE(ctx.test(pack_md5_word0(key.data(), key.size()))) << key;
    // A different length with same chars must not match.
    const std::string longer = key + "a";
    EXPECT_FALSE(ctx.test(pack_md5_word0(longer.data(), longer.size())))
        << key;
  }
}

TEST(Md5Crack, ExactlyFourCharKey) {
  const auto ctx = context_for("Wxyz");
  EXPECT_TRUE(ctx.test(pack_md5_word0("Wxyz", 4)));
  EXPECT_FALSE(ctx.test(pack_md5_word0("Wxyy", 4)));
}

TEST(Md5Crack, LongestSupportedKey) {
  const std::string key = "ABCDEFGHIJKLMNOPQRST";  // 20 chars
  const auto ctx = context_for(key);
  EXPECT_TRUE(ctx.test(pack_md5_word0(key.data(), key.size())));
}

TEST(Md5Crack, SaltedSuffixFoldsIntoTail) {
  // Suffix salt is just extra fixed tail bytes: context over key+salt.
  const std::string key = "pin1";
  const std::string salt = "NaCl";
  const auto target = Md5::digest(key + salt);
  Md5CrackContext ctx(target, salt, key.size() + salt.size());
  EXPECT_TRUE(ctx.test(pack_md5_word0(key.data(), key.size() + salt.size())));
}

TEST(Md5Crack, RejectsOversizedMessages) {
  const auto target = Md5::digest("x");
  EXPECT_THROW(Md5CrackContext(target, std::string(52, 'a'), 56),
               InvalidArgument);
  EXPECT_THROW(Md5CrackContext(target, "toolong", 4), InvalidArgument);
  EXPECT_THROW(Md5CrackContext(target, "x", 3), InvalidArgument);
}

TEST(PrefixWord0Iterator, EnumeratesAllCombinationsOnce) {
  const std::string cs = "abc";
  PrefixWord0Iterator it({cs.data(), cs.size()}, 2, 2, /*big_endian=*/false);
  std::set<std::uint32_t> seen;
  do {
    seen.insert(it.word0());
  } while (it.advance());
  EXPECT_EQ(seen.size(), 9u);
  EXPECT_EQ(it.combinations(), 9u);
}

TEST(PrefixWord0Iterator, FirstCharacterVariesFastest) {
  const std::string cs = "abc";
  PrefixWord0Iterator it({cs.data(), cs.size()}, 2, 2, /*big_endian=*/false);
  // Order must be aa, ba, ca, ab, bb, ... (paper mapping (4)).
  EXPECT_EQ(it.word0(), pack_md5_word0("aa", 2));
  it.advance();
  EXPECT_EQ(it.word0(), pack_md5_word0("ba", 2));
  it.advance();
  EXPECT_EQ(it.word0(), pack_md5_word0("ca", 2));
  it.advance();
  EXPECT_EQ(it.word0(), pack_md5_word0("ab", 2));
}

TEST(PrefixWord0Iterator, WrapsAroundAndReportsIt) {
  const std::string cs = "xy";
  PrefixWord0Iterator it({cs.data(), cs.size()}, 1, 1, false);
  EXPECT_TRUE(it.advance());   // x -> y
  EXPECT_FALSE(it.advance());  // wraps back to x
  EXPECT_EQ(it.word0(), pack_md5_word0("x", 1));
}

TEST(PrefixWord0Iterator, SeekJumpsToDigits) {
  const std::string cs = "abcde";
  PrefixWord0Iterator it({cs.data(), cs.size()}, 3, 3, false);
  const std::uint32_t digits[3] = {4, 0, 2};  // "eac"
  it.seek(digits);
  EXPECT_EQ(it.word0(), pack_md5_word0("eac", 3));
}

TEST(PrefixWord0Iterator, BigEndianModeMatchesShaPacking) {
  const std::string cs = "ab";
  PrefixWord0Iterator it({cs.data(), cs.size()}, 2, 2, /*big_endian=*/true);
  EXPECT_EQ(it.word0(), pack_sha_word0("aa", 2));
  it.advance();
  EXPECT_EQ(it.word0(), pack_sha_word0("ba", 2));
}

TEST(PrefixWord0Iterator, ShortKeyIncludesPadByte) {
  const std::string cs = "ab";
  PrefixWord0Iterator it({cs.data(), cs.size()}, 2, 2, false);
  EXPECT_EQ(it.word0(), pack_md5_word0("aa", 2));
}

TEST(PrefixWord0Iterator, RejectsInvalidConfiguration) {
  const std::string cs = "ab";
  const std::span<const char> s{cs.data(), cs.size()};
  EXPECT_THROW(PrefixWord0Iterator(s, 0, 8, false), InvalidArgument);
  EXPECT_THROW(PrefixWord0Iterator(s, 5, 8, false), InvalidArgument);
  EXPECT_THROW(PrefixWord0Iterator(s, 3, 2, false), InvalidArgument);
  // The varying window must cover min(4, key_len) exactly.
  EXPECT_THROW(PrefixWord0Iterator(s, 2, 8, false), InvalidArgument);
  EXPECT_NO_THROW(PrefixWord0Iterator(s, 4, 8, false));
}

TEST(Md5ScanPrefixes, FindsKeyAtCorrectOffset) {
  // Key "ca" over charset abc: prefix-major order aa, ba, ca -> offset 2.
  const auto ctx = context_for("ca");
  const std::string cs = "abc";
  PrefixWord0Iterator it({cs.data(), cs.size()}, 2, 2, false);
  const auto hit = md5_scan_prefixes(ctx, it, 9);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 2u);
}

TEST(Md5ScanPrefixes, ReturnsNulloptWhenAbsent) {
  const auto ctx = context_for("zz");  // 'z' not in charset
  const std::string cs = "abc";
  PrefixWord0Iterator it({cs.data(), cs.size()}, 2, 2, false);
  EXPECT_FALSE(md5_scan_prefixes(ctx, it, 9).has_value());
}

TEST(Md5ScanPrefixes, ScanAdvancesIteratorPastRange) {
  const auto ctx = context_for("zz");
  const std::string cs = "abc";
  PrefixWord0Iterator it({cs.data(), cs.size()}, 2, 2, false);
  md5_scan_prefixes(ctx, it, 4);  // consumed aa, ba, ca, ab
  EXPECT_EQ(it.word0(), pack_md5_word0("bb", 2));
}

}  // namespace
}  // namespace gks::hash
