#include "hash/md5.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "hash/kernel_words.h"
#include "hash/md5_kernel.h"

namespace gks::hash {
namespace {

// RFC 1321 appendix A.5 test suite.
struct Rfc1321Vector {
  const char* message;
  const char* digest;
};

class Md5Rfc1321 : public ::testing::TestWithParam<Rfc1321Vector> {};

TEST_P(Md5Rfc1321, MatchesReferenceDigest) {
  const auto& v = GetParam();
  EXPECT_EQ(Md5::digest(v.message).to_hex(), v.digest);
}

INSTANTIATE_TEST_SUITE_P(
    Rfc1321, Md5Rfc1321,
    ::testing::Values(
        Rfc1321Vector{"", "d41d8cd98f00b204e9800998ecf8427e"},
        Rfc1321Vector{"a", "0cc175b9c0f1b6a831c399e269772661"},
        Rfc1321Vector{"abc", "900150983cd24fb0d6963f7d28e17f72"},
        Rfc1321Vector{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
        Rfc1321Vector{"abcdefghijklmnopqrstuvwxyz",
                      "c3fcd3d76192e4007dfb496cca67e13b"},
        Rfc1321Vector{
            "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
            "d174ab98d277d9f5a5611c2c9f419d9f"},
        Rfc1321Vector{"1234567890123456789012345678901234567890123456789012345"
                      "6789012345678901234567890",
                      "57edf4a22be3c955ac49da2e2107b67a"}));

TEST(Md5, ChunkedUpdateMatchesOneShot) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "several 64-byte block boundaries in this streaming test.";
  const auto expected = Md5::digest(msg);
  for (std::size_t chunk = 1; chunk <= msg.size(); ++chunk) {
    Md5 h;
    for (std::size_t i = 0; i < msg.size(); i += chunk) {
      h.update(std::string_view(msg).substr(i, chunk));
    }
    EXPECT_EQ(h.finalize(), expected) << "chunk size " << chunk;
  }
}

TEST(Md5, ExactBlockBoundaryLengths) {
  // 55 is the largest single-block message; 56, 63, 64, 65 force the
  // two-block padding paths.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(len, 'x');
    Md5 a;
    a.update(msg);
    Md5 b;
    for (char c : msg) b.update(std::string_view(&c, 1));
    EXPECT_EQ(a.finalize(), b.finalize()) << "len " << len;
  }
}

TEST(Md5, DigestOfBinaryData) {
  const std::uint8_t data[] = {0x00, 0xff, 0x80, 0x7f};
  EXPECT_EQ(Md5::digest(std::span<const std::uint8_t>(data)).to_hex().size(),
            32u);
}

TEST(Md5, SingleBlockKernelMatchesStreamingForShortKeys) {
  for (const char* key : {"", "a", "abcd", "p4ssw0rd", "exactly20characters!",
                          "a-55-byte-message-that-fills-the-single-block-path-xx"}) {
    const auto block = pack_md5_block(key);
    std::array<std::uint32_t, 16> m = block.words;
    const auto s = md5_single_block(m);
    Md5Digest d;
    for (int i = 0; i < 4; ++i) {
      const std::uint32_t w = (i == 0 ? s.a : i == 1 ? s.b : i == 2 ? s.c : s.d);
      d.bytes[4 * i + 0] = static_cast<std::uint8_t>(w);
      d.bytes[4 * i + 1] = static_cast<std::uint8_t>(w >> 8);
      d.bytes[4 * i + 2] = static_cast<std::uint8_t>(w >> 16);
      d.bytes[4 * i + 3] = static_cast<std::uint8_t>(w >> 24);
    }
    EXPECT_EQ(d, Md5::digest(key)) << key;
  }
}

TEST(Md5, ReverseStepsInvertsForwardSteps) {
  const auto block = pack_md5_block("someKey9");
  Md5State<std::uint32_t> s{kMd5Init[0], kMd5Init[1], kMd5Init[2],
                            kMd5Init[3]};
  md5_forward_steps(s, block.words, 64);
  const Md5State<std::uint32_t> full = s;

  // Reverting 63..49 must land exactly on the state after step 48.
  Md5State<std::uint32_t> fwd49{kMd5Init[0], kMd5Init[1], kMd5Init[2],
                                kMd5Init[3]};
  md5_forward_steps(fwd49, block.words, 49);

  Md5State<std::uint32_t> rev = full;
  md5_reverse_steps(rev, block.words, 49);
  EXPECT_EQ(rev.a, fwd49.a);
  EXPECT_EQ(rev.b, fwd49.b);
  EXPECT_EQ(rev.c, fwd49.c);
  EXPECT_EQ(rev.d, fwd49.d);
}

TEST(Md5, ReverseAllStepsRecoversInitialState) {
  const auto block = pack_md5_block("xyz");
  Md5State<std::uint32_t> s{kMd5Init[0], kMd5Init[1], kMd5Init[2],
                            kMd5Init[3]};
  md5_forward_steps(s, block.words, 64);
  md5_reverse_steps(s, block.words, 0);
  EXPECT_EQ(s.a, kMd5Init[0]);
  EXPECT_EQ(s.b, kMd5Init[1]);
  EXPECT_EQ(s.c, kMd5Init[2]);
  EXPECT_EQ(s.d, kMd5Init[3]);
}

TEST(Md5, MessageIndexMatchesRfcSchedule) {
  // Round openings from RFC 1321: step 16 uses m[1], step 32 uses m[5],
  // step 48 uses m[0].
  EXPECT_EQ(md5_msg_index(0), 0u);
  EXPECT_EQ(md5_msg_index(15), 15u);
  EXPECT_EQ(md5_msg_index(16), 1u);
  EXPECT_EQ(md5_msg_index(32), 5u);
  EXPECT_EQ(md5_msg_index(48), 0u);
}

TEST(Md5, Word0NotUsedInLast15Steps) {
  // The property the reversal optimization rests on (Section V-B).
  for (unsigned step = 49; step < 64; ++step) {
    EXPECT_NE(md5_msg_index(step), 0u) << "step " << step;
  }
  // And word 0 is used exactly four times in total.
  int uses = 0;
  for (unsigned step = 0; step < 64; ++step) {
    if (md5_msg_index(step) == 0) ++uses;
  }
  EXPECT_EQ(uses, 4);
}

}  // namespace
}  // namespace gks::hash
