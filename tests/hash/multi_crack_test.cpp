#include "hash/multi_crack.h"

#include <gtest/gtest.h>

#include "hash/kernel_words.h"
#include "hash/md5.h"
#include "hash/md5_crack.h"
#include "hash/sha1.h"
#include "hash/sha1_crack.h"
#include "support/error.h"
#include "support/rng.h"

namespace gks::hash {
namespace {

TEST(Md5Multi, FindsEachTargetAtItsOwnPrefix) {
  // Three 8-char keys sharing the tail "rest": the contexts differ only
  // in their first words.
  const std::vector<std::string> keys = {"aaaarest", "bbbbrest", "zQ9xrest"};
  std::vector<Md5Digest> targets;
  for (const auto& k : keys) targets.push_back(Md5::digest(k));

  const Md5MultiContext multi(targets, "rest", 8);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(multi.test(pack_md5_word0(keys[i].data(), 8)), i) << keys[i];
  }
  EXPECT_EQ(multi.test(pack_md5_word0("nope", 8)), Md5MultiContext::npos);
}

TEST(Md5Multi, AgreesWithSingleTargetContext) {
  const std::string key = "Pa55word";
  const auto target = Md5::digest(key);
  const Md5MultiContext multi({target}, "word", 8);
  const Md5CrackContext single(target, "word", 8);
  SplitMix64 rng(7);
  for (int i = 0; i < 3000; ++i) {
    const auto m0 = static_cast<std::uint32_t>(rng());
    EXPECT_EQ(multi.test(m0) == 0u, single.test(m0)) << m0;
  }
}

TEST(Md5Multi, ManyTargetsNoFalsePositives) {
  // 32 random targets; random candidates must never match.
  SplitMix64 rng(12);
  std::vector<Md5Digest> targets;
  for (int i = 0; i < 32; ++i) {
    Md5Digest d;
    for (auto& b : d.bytes) b = static_cast<std::uint8_t>(rng());
    targets.push_back(d);
  }
  const Md5MultiContext multi(targets, "xxxx", 8);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(multi.test(static_cast<std::uint32_t>(rng())),
              Md5MultiContext::npos);
  }
}

TEST(Sha1Multi, FindsEachTargetAtItsOwnPrefix) {
  const std::vector<std::string> keys = {"aaaarest", "bbbbrest", "zQ9xrest"};
  std::vector<Sha1Digest> targets;
  for (const auto& k : keys) targets.push_back(Sha1::digest(k));

  const Sha1MultiContext multi(targets, "rest", 8);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(multi.test(pack_sha_word0(keys[i].data(), 8)), i) << keys[i];
  }
  EXPECT_EQ(multi.test(pack_sha_word0("nope", 8)), Sha1MultiContext::npos);
}

TEST(Sha1Multi, AgreesWithSingleTargetContext) {
  const std::string key = "Pa55word";
  const auto target = Sha1::digest(key);
  const Sha1MultiContext multi({target}, "word", 8);
  const Sha1CrackContext single(target, "word", 8);
  SplitMix64 rng(8);
  for (int i = 0; i < 3000; ++i) {
    const auto w0 = static_cast<std::uint32_t>(rng());
    EXPECT_EQ(multi.test(w0) == 0u, single.test(w0)) << w0;
  }
}

TEST(MultiContexts, RejectDegenerateInput) {
  EXPECT_THROW(Md5MultiContext({}, "rest", 8), InvalidArgument);
  EXPECT_THROW(Sha1MultiContext({}, "rest", 8), InvalidArgument);
  EXPECT_THROW(Md5MultiContext({Md5Digest{}}, "waytoolongtail", 8),
               InvalidArgument);
}

TEST(MultiContexts, ShortKeysSupported) {
  const auto target = Md5::digest("ab");
  const Md5MultiContext multi({target}, "", 2);
  EXPECT_EQ(multi.test(pack_md5_word0("ab", 2)), 0u);
  EXPECT_EQ(multi.test(pack_md5_word0("ba", 2)), Md5MultiContext::npos);
}

}  // namespace
}  // namespace gks::hash
