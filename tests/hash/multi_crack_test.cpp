#include "hash/multi_crack.h"

#include <gtest/gtest.h>

#include "hash/kernel_words.h"
#include "hash/md5.h"
#include "hash/md5_crack.h"
#include "hash/sha1.h"
#include "hash/sha1_crack.h"
#include "support/error.h"
#include "support/rng.h"

namespace gks::hash {
namespace {

TEST(Md5Multi, FindsEachTargetAtItsOwnPrefix) {
  // Three 8-char keys sharing the tail "rest": the contexts differ only
  // in their first words.
  const std::vector<std::string> keys = {"aaaarest", "bbbbrest", "zQ9xrest"};
  std::vector<Md5Digest> targets;
  for (const auto& k : keys) targets.push_back(Md5::digest(k));

  const Md5MultiContext multi(targets, "rest", 8);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(multi.test(pack_md5_word0(keys[i].data(), 8)), i) << keys[i];
  }
  EXPECT_EQ(multi.test(pack_md5_word0("nope", 8)), Md5MultiContext::npos);
}

TEST(Md5Multi, AgreesWithSingleTargetContext) {
  const std::string key = "Pa55word";
  const auto target = Md5::digest(key);
  const Md5MultiContext multi({target}, "word", 8);
  const Md5CrackContext single(target, "word", 8);
  SplitMix64 rng(7);
  for (int i = 0; i < 3000; ++i) {
    const auto m0 = static_cast<std::uint32_t>(rng());
    EXPECT_EQ(multi.test(m0) == 0u, single.test(m0)) << m0;
  }
}

TEST(Md5Multi, ManyTargetsNoFalsePositives) {
  // 32 random targets; random candidates must never match.
  SplitMix64 rng(12);
  std::vector<Md5Digest> targets;
  for (int i = 0; i < 32; ++i) {
    Md5Digest d;
    for (auto& b : d.bytes) b = static_cast<std::uint8_t>(rng());
    targets.push_back(d);
  }
  const Md5MultiContext multi(targets, "xxxx", 8);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(multi.test(static_cast<std::uint32_t>(rng())),
              Md5MultiContext::npos);
  }
}

TEST(Sha1Multi, FindsEachTargetAtItsOwnPrefix) {
  const std::vector<std::string> keys = {"aaaarest", "bbbbrest", "zQ9xrest"};
  std::vector<Sha1Digest> targets;
  for (const auto& k : keys) targets.push_back(Sha1::digest(k));

  const Sha1MultiContext multi(targets, "rest", 8);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(multi.test(pack_sha_word0(keys[i].data(), 8)), i) << keys[i];
  }
  EXPECT_EQ(multi.test(pack_sha_word0("nope", 8)), Sha1MultiContext::npos);
}

TEST(Sha1Multi, AgreesWithSingleTargetContext) {
  const std::string key = "Pa55word";
  const auto target = Sha1::digest(key);
  const Sha1MultiContext multi({target}, "word", 8);
  const Sha1CrackContext single(target, "word", 8);
  SplitMix64 rng(8);
  for (int i = 0; i < 3000; ++i) {
    const auto w0 = static_cast<std::uint32_t>(rng());
    EXPECT_EQ(multi.test(w0) == 0u, single.test(w0)) << w0;
  }
}

TEST(MultiContexts, RejectDegenerateInput) {
  EXPECT_THROW(Md5MultiContext({}, "rest", 8), InvalidArgument);
  EXPECT_THROW(Sha1MultiContext({}, "rest", 8), InvalidArgument);
  EXPECT_THROW(Md5MultiContext({Md5Digest{}}, "waytoolongtail", 8),
               InvalidArgument);
}

TEST(MultiContexts, ShortKeysSupported) {
  const auto target = Md5::digest("ab");
  const Md5MultiContext multi({target}, "", 2);
  EXPECT_EQ(multi.test(pack_md5_word0("ab", 2)), 0u);
  EXPECT_EQ(multi.test(pack_md5_word0("ba", 2)), Md5MultiContext::npos);
}

std::uint32_t test_load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

void test_store_le32(std::uint8_t* p, std::uint32_t x) {
  p[0] = static_cast<std::uint8_t>(x);
  p[1] = static_cast<std::uint8_t>(x >> 8);
  p[2] = static_cast<std::uint8_t>(x >> 16);
  p[3] = static_cast<std::uint8_t>(x >> 24);
}

/// Builds a decoy MD5 "digest" whose 15-step-reverted state shares its
/// early-exit word (register a, the t45 comparison value) with `real`'s
/// reverted state but differs everywhere else. No key hashes to it, but
/// it occupies the same slot in the early-exit comparison — exactly the
/// 32-bit birthday collision a large audit batch will eventually
/// contain.
Md5Digest md5_word_collider(const Md5Digest& real, const std::string& message) {
  const std::array<std::uint32_t, 16> m = pack_md5_block(message).words;

  Md5State<std::uint32_t> s{
      test_load_le32(real.bytes.data()) - kMd5Init[0],
      test_load_le32(real.bytes.data() + 4) - kMd5Init[1],
      test_load_le32(real.bytes.data() + 8) - kMd5Init[2],
      test_load_le32(real.bytes.data() + 12) - kMd5Init[3]};
  md5_reverse_steps(s, m, 49);

  // Same early-exit word, different b/c/d: a word match that must not
  // shadow the genuine target during confirmation.
  std::uint32_t a = s.a, b = s.b ^ 0x5a5a5a5au, c = s.c + 0x1234567u,
                d = s.d ^ 0xdeadbeefu;
  // Redo steps 49..63 (they never consume message word 0, so the
  // candidate-independent words of `message` fully determine them).
  for (unsigned i = 49; i < 64; ++i) {
    const std::uint32_t t =
        b + rotl(a + md5_round_fn(i, b, c, d) + m[md5_msg_index(i)] + kMd5K[i],
                 kMd5S[i]);
    a = d;
    d = c;
    c = b;
    b = t;
  }

  Md5Digest decoy;
  test_store_le32(decoy.bytes.data(), a + kMd5Init[0]);
  test_store_le32(decoy.bytes.data() + 4, b + kMd5Init[1]);
  test_store_le32(decoy.bytes.data() + 8, c + kMd5Init[2]);
  test_store_le32(decoy.bytes.data() + 12, d + kMd5Init[3]);
  return decoy;
}

TEST(Md5Multi, EarlyExitWordCollisionDoesNotShadowLaterTarget) {
  // Regression: the decoy sits at slot 0 with the same early-exit word
  // as the real target at slot 1. The old engine stopped at the first
  // word match, failed its full confirmation, and silently dropped the
  // real target behind it.
  const std::string key = "aaaarest";
  const auto real = Md5::digest(key);
  const auto decoy = md5_word_collider(real, key);
  ASSERT_NE(decoy, real);

  const Md5MultiContext multi({decoy, real}, "rest", 8);
  EXPECT_EQ(multi.test(pack_md5_word0(key.data(), 8)), 1u);

  // Both orderings work, and a non-matching candidate still misses.
  const Md5MultiContext swapped({real, decoy}, "rest", 8);
  EXPECT_EQ(swapped.test(pack_md5_word0(key.data(), 8)), 0u);
  EXPECT_EQ(multi.test(pack_md5_word0("nope", 8)), Md5MultiContext::npos);
}

TEST(Sha1Multi, EarlyExitWordCollisionDoesNotShadowLaterTarget) {
  // SHA1's early-exit word is the feed-forward-stripped final `e`,
  // i.e. digest bytes 16..19: perturbing the leading bytes yields a
  // decoy colliding on exactly that word.
  const std::string key = "aaaarest";
  const auto real = Sha1::digest(key);
  Sha1Digest decoy = real;
  decoy.bytes[0] ^= 0x5a;
  decoy.bytes[7] ^= 0xa5;

  const Sha1MultiContext multi({decoy, real}, "rest", 8);
  EXPECT_EQ(multi.test(pack_sha_word0(key.data(), 8)), 1u);

  const Sha1MultiContext swapped({real, decoy}, "rest", 8);
  EXPECT_EQ(swapped.test(pack_sha_word0(key.data(), 8)), 0u);
  EXPECT_EQ(multi.test(pack_sha_word0("nope", 8)), Sha1MultiContext::npos);
}

TEST(Md5Multi, TestHitsReportsEveryDuplicateSlot) {
  const std::string key = "bbbbrest";
  const auto target = Md5::digest(key);
  const auto other = Md5::digest("aaaarest");
  // Duplicate digests at slots 0 and 2 plus a decoy word-collider at
  // slot 3: one candidate, two hits, no false ones.
  const auto decoy = md5_word_collider(target, key);
  const Md5MultiContext multi({target, other, target, decoy}, "rest", 8);

  std::vector<MultiHit> hits;
  multi.test_hits(pack_md5_word0(key.data(), 8), 77, hits);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], (MultiHit{77, 0}));
  EXPECT_EQ(hits[1], (MultiHit{77, 2}));

  hits.clear();
  multi.test_hits(pack_md5_word0("nope", 8), 0, hits);
  EXPECT_TRUE(hits.empty());
}

TEST(Md5Multi, SharedWordTargetsReportedAmongMillionDecoys) {
  // The high-density regime: ~1M random decoy digests push the index
  // into its Bloom geometry, and the planted targets collide on their
  // 32-bit early-exit word (duplicate digest + a word-collider decoy).
  // Every genuine slot must surface — first-match-only lookups or a
  // lossy gate would drop the duplicate behind the collider.
  const std::string key = "bbbbrest";
  const auto target = Md5::digest(key);
  const auto collider = md5_word_collider(target, key);

  SplitMix64 rng(31);
  std::vector<Md5Digest> targets;
  const std::size_t kDecoys = 1000000;
  targets.reserve(kDecoys + 3);
  targets.push_back(target);  // slot 0
  for (std::size_t i = 0; i < kDecoys; ++i) {
    Md5Digest d;
    for (auto& b : d.bytes) b = static_cast<std::uint8_t>(rng());
    targets.push_back(d);
  }
  targets.push_back(target);    // slot kDecoys + 1 (duplicate digest)
  targets.push_back(collider);  // slot kDecoys + 2 (same word, no key)

  TargetIndexStats stats;
  TargetIndex::Config cfg;
  cfg.stats = &stats;
  const Md5MultiContext multi(targets, "rest", 8, cfg);
  EXPECT_STREQ(multi.index().filter_kind(), "bloom");

  std::vector<MultiHit> hits;
  multi.test_hits(pack_md5_word0(key.data(), 8), 42, hits);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], (MultiHit{42, 0}));
  EXPECT_EQ(hits[1],
            (MultiHit{42, static_cast<std::uint32_t>(kDecoys + 1)}));

  // Foreign candidates resolve to no hit, and the measured gate traffic
  // lands in the shared stats sink.
  const auto before = stats.false_positives.load();
  for (int i = 0; i < 2000; ++i) {
    std::vector<MultiHit> none;
    multi.test_hits(static_cast<std::uint32_t>(rng()), 0, none);
    ASSERT_TRUE(none.empty());
  }
  EXPECT_GT(stats.gate_hits.load(), 0u);
  EXPECT_GE(stats.false_positives.load(), before);
}

TEST(Md5Multi, AddAndRetireTargetsLive) {
  const std::string key_a = "aaaarest";
  const std::string key_b = "bbbbrest";
  Md5MultiContext multi({Md5::digest(key_a)}, "rest", 8);

  // key_b is unknown until added; its slot continues the numbering.
  EXPECT_EQ(multi.test(pack_md5_word0(key_b.data(), 8)), Md5MultiContext::npos);
  multi.add_targets(std::vector<Md5Digest>{Md5::digest(key_b)});
  EXPECT_EQ(multi.target_count(), 2u);
  EXPECT_EQ(multi.test(pack_md5_word0(key_b.data(), 8)), 1u);

  // Retiring slot 0 detaches key_a but key_b keeps slot 1.
  multi.retire_slots(std::vector<std::uint32_t>{0});
  EXPECT_EQ(multi.test(pack_md5_word0(key_a.data(), 8)), Md5MultiContext::npos);
  EXPECT_EQ(multi.test(pack_md5_word0(key_b.data(), 8)), 1u);
}

TEST(Sha1Multi, AddAndRetireTargetsLive) {
  const std::string key_a = "aaaarest";
  const std::string key_b = "bbbbrest";
  Sha1MultiContext multi({Sha1::digest(key_a)}, "rest", 8);

  EXPECT_EQ(multi.test(pack_sha_word0(key_b.data(), 8)),
            Sha1MultiContext::npos);
  multi.add_targets(std::vector<Sha1Digest>{Sha1::digest(key_b)});
  EXPECT_EQ(multi.test(pack_sha_word0(key_b.data(), 8)), 1u);

  multi.retire_slots(std::vector<std::uint32_t>{0});
  EXPECT_EQ(multi.test(pack_sha_word0(key_a.data(), 8)),
            Sha1MultiContext::npos);
  EXPECT_EQ(multi.test(pack_sha_word0(key_b.data(), 8)), 1u);
}

TEST(Sha1Multi, TestHitsReportsEveryDuplicateSlot) {
  const std::string key = "bbbbrest";
  const auto target = Sha1::digest(key);
  const auto other = Sha1::digest("aaaarest");
  const Sha1MultiContext multi({target, other, target}, "rest", 8);

  std::vector<MultiHit> hits;
  multi.test_hits(pack_sha_word0(key.data(), 8), 3, hits);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], (MultiHit{3, 0}));
  EXPECT_EQ(hits[1], (MultiHit{3, 2}));
}

TEST(MultiScanPrefixes, CollectsAllHitsInRange) {
  // Scalar multi scan over the whole 2-char "ab" space: four targets
  // planted (one duplicated), every hit reported, no early stop.
  const std::vector<std::string> keys = {"aa", "ba", "bb", "ba"};
  std::vector<Md5Digest> targets;
  for (const auto& k : keys) targets.push_back(Md5::digest(k));
  const Md5MultiContext multi(targets, "", 2);

  PrefixWord0Iterator it({"ab", 2}, 2, 2, false);
  std::vector<MultiHit> hits;
  md5_multi_scan_prefixes(multi, it, 4, hits);

  // Prefix-major order: aa(0), ba(1), ab(2), bb(3).
  ASSERT_EQ(hits.size(), 4u);
  EXPECT_EQ(hits[0], (MultiHit{0, 0}));
  EXPECT_EQ(hits[1], (MultiHit{1, 1}));
  EXPECT_EQ(hits[2], (MultiHit{1, 3}));
  EXPECT_EQ(hits[3], (MultiHit{3, 2}));
}

}  // namespace
}  // namespace gks::hash
