#include "hash/salted.h"

#include <gtest/gtest.h>

#include "hash/md5.h"
#include "hash/sha1.h"

namespace gks::hash {
namespace {

TEST(Salted, NoSaltIsPlainDigest) {
  const SaltSpec none{};
  EXPECT_EQ(md5_salted(none, "secret"), Md5::digest("secret"));
  EXPECT_EQ(sha1_salted(none, "secret"), Sha1::digest("secret"));
}

TEST(Salted, PrefixSaltConcatenatesInFront) {
  const SaltSpec spec{SaltPosition::kPrefix, "NaCl"};
  EXPECT_EQ(spec.apply("pw"), "NaClpw");
  EXPECT_EQ(md5_salted(spec, "pw"), Md5::digest("NaClpw"));
}

TEST(Salted, SuffixSaltConcatenatesBehind) {
  const SaltSpec spec{SaltPosition::kSuffix, "NaCl"};
  EXPECT_EQ(spec.apply("pw"), "pwNaCl");
  EXPECT_EQ(sha1_salted(spec, "pw"), Sha1::digest("pwNaCl"));
}

TEST(Salted, DifferentSaltsChangeTheDigest) {
  // The property that defeats precomputed tables (paper Section I).
  const SaltSpec a{SaltPosition::kSuffix, "salt-a"};
  const SaltSpec b{SaltPosition::kSuffix, "salt-b"};
  EXPECT_NE(md5_salted(a, "hunter2"), md5_salted(b, "hunter2"));
}

TEST(Salted, ExtraLengthReportsSaltBytes) {
  EXPECT_EQ(SaltSpec{}.extra_length(), 0u);
  EXPECT_EQ((SaltSpec{SaltPosition::kPrefix, "abc"}).extra_length(), 3u);
  EXPECT_EQ((SaltSpec{SaltPosition::kSuffix, "abcd"}).extra_length(), 4u);
}

TEST(Salted, EmptySaltStringBehavesLikePlain) {
  const SaltSpec spec{SaltPosition::kSuffix, ""};
  EXPECT_EQ(md5_salted(spec, "k"), Md5::digest("k"));
}

}  // namespace
}  // namespace gks::hash
