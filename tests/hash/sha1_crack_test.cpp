#include "hash/sha1_crack.h"

#include <gtest/gtest.h>

#include "support/error.h"

#include <string>

#include "hash/kernel_words.h"
#include "hash/sha1.h"
#include "support/rng.h"

namespace gks::hash {
namespace {

Sha1CrackContext context_for(const std::string& key) {
  const auto target = Sha1::digest(key);
  const std::string tail = key.size() > 4 ? key.substr(4) : std::string();
  return Sha1CrackContext(target, tail, key.size());
}

TEST(Sha1Crack, FindsTheMatchingPrefix) {
  const std::string key = "zxQ9rest";
  const auto ctx = context_for(key);
  EXPECT_TRUE(ctx.test(pack_sha_word0(key.data(), key.size())));
}

TEST(Sha1Crack, RejectsNonMatchingPrefixes) {
  const auto ctx = context_for("zxQ9rest");
  EXPECT_FALSE(ctx.test(pack_sha_word0("zxQ8", 8)));
  EXPECT_FALSE(ctx.test(pack_sha_word0("aaaa", 8)));
  EXPECT_FALSE(ctx.test(0));
}

TEST(Sha1Crack, OptimizedTestAgreesWithPlainTestOnRandomCandidates) {
  const auto ctx = context_for("Pa55word");
  SplitMix64 rng(1974);
  for (int i = 0; i < 5000; ++i) {
    const auto w0 = static_cast<std::uint32_t>(rng());
    EXPECT_EQ(ctx.test(w0), ctx.test_plain(w0)) << "w0=" << w0;
  }
}

TEST(Sha1Crack, ShortKeysPackPaddingIntoWord0) {
  for (const std::string key : {"a", "ab", "abc"}) {
    const auto ctx = context_for(key);
    EXPECT_TRUE(ctx.test(pack_sha_word0(key.data(), key.size()))) << key;
  }
}

TEST(Sha1Crack, ExactlyFourCharKey) {
  const auto ctx = context_for("Wxyz");
  EXPECT_TRUE(ctx.test(pack_sha_word0("Wxyz", 4)));
  EXPECT_FALSE(ctx.test(pack_sha_word0("Wxyy", 4)));
}

TEST(Sha1Crack, LongestSupportedKey) {
  const std::string key = "ABCDEFGHIJKLMNOPQRST";
  const auto ctx = context_for(key);
  EXPECT_TRUE(ctx.test(pack_sha_word0(key.data(), key.size())));
}

TEST(Sha1Crack, SaltedSuffixFoldsIntoTail) {
  const std::string key = "pin1";
  const std::string salt = "NaCl";
  const auto target = Sha1::digest(key + salt);
  Sha1CrackContext ctx(target, salt, key.size() + salt.size());
  EXPECT_TRUE(ctx.test(pack_sha_word0(key.data(), key.size() + salt.size())));
}

TEST(Sha1Crack, RejectsInvalidConstruction) {
  const auto target = Sha1::digest("x");
  EXPECT_THROW(Sha1CrackContext(target, std::string(52, 'a'), 56),
               InvalidArgument);
  EXPECT_THROW(Sha1CrackContext(target, "bad", 4), InvalidArgument);
}

TEST(Sha1ScanPrefixes, FindsKeyAtCorrectOffset) {
  const auto ctx = context_for("ca");
  const std::string cs = "abc";
  PrefixWord0Iterator it({cs.data(), cs.size()}, 2, 2, /*big_endian=*/true);
  const auto hit = sha1_scan_prefixes(ctx, it, 9);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 2u);
}

TEST(Sha1ScanPrefixes, ReturnsNulloptWhenAbsent) {
  const auto ctx = context_for("zz");
  const std::string cs = "abc";
  PrefixWord0Iterator it({cs.data(), cs.size()}, 2, 2, true);
  EXPECT_FALSE(sha1_scan_prefixes(ctx, it, 9).has_value());
}

}  // namespace
}  // namespace gks::hash
