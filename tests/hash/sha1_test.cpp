#include "hash/sha1.h"

#include <gtest/gtest.h>

#include <string>

#include "hash/kernel_words.h"
#include "hash/sha1_kernel.h"

namespace gks::hash {
namespace {

struct Sha1Vector {
  const char* message;
  const char* digest;
};

class Sha1KnownVectors : public ::testing::TestWithParam<Sha1Vector> {};

TEST_P(Sha1KnownVectors, MatchesReferenceDigest) {
  const auto& v = GetParam();
  EXPECT_EQ(Sha1::digest(v.message).to_hex(), v.digest);
}

// RFC 3174 section 7.3 test cases plus standard extras.
INSTANTIATE_TEST_SUITE_P(
    Rfc3174, Sha1KnownVectors,
    ::testing::Values(
        Sha1Vector{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
        Sha1Vector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                   "84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
        Sha1Vector{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
        Sha1Vector{"a", "86f7e437faa5a7fce15d1ddcb9eaeaea377667b8"},
        Sha1Vector{"The quick brown fox jumps over the lazy dog",
                   "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"}));

TEST(Sha1, MillionAs) {
  // RFC 3174 TEST3: one million repetitions of "a".
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.finalize().to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, ChunkedUpdateMatchesOneShot) {
  const std::string msg =
      "Streaming SHA1 must agree with the one-shot digest across all "
      "chunkings, including ones that straddle the 64-byte block edge.";
  const auto expected = Sha1::digest(msg);
  for (std::size_t chunk : {1u, 3u, 7u, 16u, 63u, 64u, 65u}) {
    Sha1 h;
    for (std::size_t i = 0; i < msg.size(); i += chunk) {
      h.update(std::string_view(msg).substr(i, chunk));
    }
    EXPECT_EQ(h.finalize(), expected) << "chunk size " << chunk;
  }
}

TEST(Sha1, SingleBlockKernelMatchesStreamingForShortKeys) {
  for (const char* key :
       {"", "a", "abcd", "p4ssw0rd", "exactly20characters!"}) {
    const auto block = pack_sha_block(key);
    const auto s = sha1_single_block(block.words);
    Sha1Digest d;
    const std::uint32_t words[5] = {s.a, s.b, s.c, s.d, s.e};
    for (int i = 0; i < 5; ++i) {
      d.bytes[4 * i + 0] = static_cast<std::uint8_t>(words[i] >> 24);
      d.bytes[4 * i + 1] = static_cast<std::uint8_t>(words[i] >> 16);
      d.bytes[4 * i + 2] = static_cast<std::uint8_t>(words[i] >> 8);
      d.bytes[4 * i + 3] = static_cast<std::uint8_t>(words[i]);
    }
    EXPECT_EQ(d, Sha1::digest(key)) << key;
  }
}

TEST(Sha1, RoundFunctionsMatchRfcDefinitions) {
  const std::uint32_t b = 0x5a5a5a5a, c = 0x0ff00ff0, d = 0x12345678;
  EXPECT_EQ(sha1_round_fn(0, b, c, d), (b & c) | (~b & d));
  EXPECT_EQ(sha1_round_fn(25, b, c, d), b ^ c ^ d);
  EXPECT_EQ(sha1_round_fn(45, b, c, d), (b & c) | (b & d) | (c & d));
  EXPECT_EQ(sha1_round_fn(79, b, c, d), b ^ c ^ d);
}

TEST(Sha1, PartialForwardStepsCompose) {
  // Running 80 steps at once equals running 40 + 40 with the same ring —
  // guarded here because the crack kernel interrupts the loop mid-way.
  const auto block = pack_sha_block("composeTest");
  Sha1State<std::uint32_t> whole{kSha1Init[0], kSha1Init[1], kSha1Init[2],
                                 kSha1Init[3], kSha1Init[4]};
  sha1_forward_steps(whole, block.words, 80);

  // Manual split: the ring must be carried across, so reuse the
  // expansion helper directly.
  std::array<std::uint32_t, 16> ring = block.words;
  std::uint32_t a = kSha1Init[0], b = kSha1Init[1], c = kSha1Init[2],
                d = kSha1Init[3], e = kSha1Init[4];
  for (unsigned t = 0; t < 80; ++t) {
    const std::uint32_t wt = t < 16 ? ring[t] : sha1_expand(ring, t);
    const std::uint32_t f = sha1_round_fn(t, b, c, d);
    const std::uint32_t temp = rotl(a, 5) + f + e + wt + kSha1K[t / 20];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }
  EXPECT_EQ(whole.a, a);
  EXPECT_EQ(whole.e, e);
}

}  // namespace
}  // namespace gks::hash
