#include "hash/sha256.h"

#include <gtest/gtest.h>

#include "support/error.h"

#include <string>

namespace gks::hash {
namespace {

struct Sha256Vector {
  const char* message;
  const char* digest;
};

class Sha256KnownVectors : public ::testing::TestWithParam<Sha256Vector> {};

TEST_P(Sha256KnownVectors, MatchesReferenceDigest) {
  const auto& v = GetParam();
  EXPECT_EQ(Sha256::digest(v.message).to_hex(), v.digest);
}

// FIPS 180-4 / NIST CAVP examples.
INSTANTIATE_TEST_SUITE_P(
    Fips180, Sha256KnownVectors,
    ::testing::Values(
        Sha256Vector{
            "abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
        Sha256Vector{
            "",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
        Sha256Vector{
            "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
        Sha256Vector{
            "The quick brown fox jumps over the lazy dog",
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"}));

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ChunkedUpdateMatchesOneShot) {
  const std::string msg(200, 'q');
  const auto expected = Sha256::digest(msg);
  for (std::size_t chunk : {1u, 13u, 64u, 100u}) {
    Sha256 h;
    for (std::size_t i = 0; i < msg.size(); i += chunk) {
      h.update(std::string_view(msg).substr(i, chunk));
    }
    EXPECT_EQ(h.finalize(), expected) << "chunk " << chunk;
  }
}

TEST(Sha256, MidstateResumptionMatchesDirectDigest) {
  // The nonce search hashes an 80-byte header: 64 fixed bytes (block 1)
  // and 16 varying bytes. Capturing the midstate after block 1 and
  // restoring it per nonce must give identical digests.
  std::string header(80, '\0');
  for (std::size_t i = 0; i < header.size(); ++i)
    header[i] = static_cast<char>('A' + (i % 26));

  Sha256 first;
  first.update(std::string_view(header).substr(0, 64));
  const auto mid = first.midstate();

  for (int nonce = 0; nonce < 16; ++nonce) {
    header[76] = static_cast<char>(nonce);
    Sha256 direct;
    direct.update(header);
    const auto expected = direct.finalize();

    Sha256 resumed;
    resumed.restore(mid, 64);
    resumed.update(std::string_view(header).substr(64));
    EXPECT_EQ(resumed.finalize(), expected) << "nonce " << nonce;
  }
}

TEST(Sha256, MidstateRequiresBlockBoundary) {
  Sha256 h;
  h.update("abc");
  EXPECT_THROW(h.midstate(), InvalidArgument);
}

TEST(Sha256, DoubleHashForBitcoinStyleBlocks) {
  // SHA256d — digest of a digest — as used by the Section I Bitcoin
  // mining motivation.
  const auto inner = Sha256::digest("block");
  const auto outer =
      Sha256::digest(std::span<const std::uint8_t>(inner.bytes));
  EXPECT_NE(outer, inner);
  EXPECT_EQ(outer, Sha256::digest(std::span<const std::uint8_t>(
                       Sha256::digest("block").bytes)));
}

}  // namespace
}  // namespace gks::hash
