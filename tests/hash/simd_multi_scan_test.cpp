// Differential sweep of the multi-target lane scanners: every width
// the host can execute must produce the exact hit list of the scalar
// multi-scan engine — same offsets, same slots, same order, same final
// iterator position — with hits planted at lane boundaries, in the
// scalar tail, and on filter false-positive words (decoy targets that
// collide with a candidate's 32-bit early-exit word but match no key).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hash/kernel_words.h"
#include "hash/md5.h"
#include "hash/multi_crack.h"
#include "hash/sha1.h"
#include "hash/simd/dispatch.h"
#include "support/rng.h"

namespace gks::hash::simd {
namespace {

struct Scenario {
  std::string charset;
  std::size_t key_len;
};

PrefixWord0Iterator iterator_for(const Scenario& sc, bool big_endian) {
  const unsigned prefix_chars =
      static_cast<unsigned>(sc.key_len < 4 ? sc.key_len : 4);
  return PrefixWord0Iterator({sc.charset.data(), sc.charset.size()},
                             prefix_chars, sc.key_len, big_endian);
}

/// The key whose word-0 prefix sits `offset` advances into the scan.
/// All keys of a scenario share the tail (multi contexts fix it).
std::string key_at_offset(const Scenario& sc, std::uint64_t offset,
                          bool big_endian) {
  auto it = iterator_for(sc, big_endian);
  for (std::uint64_t i = 0; i < offset; ++i) it.advance();
  std::string key(it.prefix().begin(), it.prefix().end());
  std::size_t fill = 0;
  while (key.size() < sc.key_len) {
    key.push_back(sc.charset[fill++ % sc.charset.size()]);
  }
  return key;
}

std::string shared_tail(const Scenario& sc, bool big_endian) {
  const std::string key = key_at_offset(sc, 0, big_endian);
  return key.size() > 4 ? key.substr(4) : std::string();
}

std::uint64_t combinations(const Scenario& sc) {
  std::uint64_t n = 1;
  const std::size_t prefix = sc.key_len < 4 ? sc.key_len : 4;
  for (std::size_t i = 0; i < prefix; ++i) n *= sc.charset.size();
  return n;
}

std::vector<Scenario> scenarios(std::uint64_t seed) {
  const std::vector<std::string> charsets = {
      "ab", "abcdef", "abcdefghijklmnop", "0123456789abcdefATZ"};
  const std::vector<std::size_t> lengths = {1, 2, 3, 4, 5, 8, 12};
  SplitMix64 rng(seed);
  std::vector<Scenario> out;
  for (int i = 0; i < 6; ++i) {
    out.push_back({charsets[rng.below(charsets.size())],
                   lengths[rng.below(lengths.size())]});
  }
  return out;
}

/// A decoy MD5 digest colliding with `key`'s early-exit word (see the
/// construction in multi_crack_test.cpp): filter and word match, but
/// confirmation fails — exercising the lane kernels' rare path without
/// producing a hit.
Md5Digest md5_decoy_for(const std::string& key) {
  const std::array<std::uint32_t, 16> m = pack_md5_block(key).words;
  const Md5Digest real = Md5::digest(key);

  const auto load = [](const std::uint8_t* p) {
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
  };
  Md5State<std::uint32_t> s{load(real.bytes.data()) - kMd5Init[0],
                            load(real.bytes.data() + 4) - kMd5Init[1],
                            load(real.bytes.data() + 8) - kMd5Init[2],
                            load(real.bytes.data() + 12) - kMd5Init[3]};
  md5_reverse_steps(s, m, 49);

  std::uint32_t a = s.a, b = s.b ^ 0x5a5a5a5au, c = s.c + 0x1234567u,
                d = s.d ^ 0xdeadbeefu;
  for (unsigned i = 49; i < 64; ++i) {
    const std::uint32_t t =
        b + rotl(a + md5_round_fn(i, b, c, d) + m[md5_msg_index(i)] + kMd5K[i],
                 kMd5S[i]);
    a = d;
    d = c;
    c = b;
    b = t;
  }
  Md5Digest decoy;
  const auto store = [](std::uint8_t* p, std::uint32_t x) {
    p[0] = static_cast<std::uint8_t>(x);
    p[1] = static_cast<std::uint8_t>(x >> 8);
    p[2] = static_cast<std::uint8_t>(x >> 16);
    p[3] = static_cast<std::uint8_t>(x >> 24);
  };
  store(decoy.bytes.data(), a + kMd5Init[0]);
  store(decoy.bytes.data() + 4, b + kMd5Init[1]);
  store(decoy.bytes.data() + 8, c + kMd5Init[2]);
  store(decoy.bytes.data() + 12, d + kMd5Init[3]);
  return decoy;
}

/// Gate geometries the differential sweeps run under: the default
/// direct bit array, the gate fully disabled (slot lookup does all
/// filtering), and the Bloom geometry forced on regardless of batch
/// size. Hit lists must be bit-identical across all three.
std::vector<std::pair<std::string, TargetIndex::Config>> gate_configs() {
  TargetIndex::Config off;
  off.gate = false;
  TargetIndex::Config bloom;
  bloom.max_direct_bits = 1;
  return {{"gate=direct", TargetIndex::Config()},
          {"gate=off", off},
          {"gate=bloom", bloom}};
}

template <class Ctx, class ScalarFn, class LaneFn>
void expect_identical_hits(const Ctx& ctx, const Scenario& sc,
                           bool big_endian, std::uint64_t count,
                           const ScalarFn& scalar_scan,
                           const LaneFn& lane_scan,
                           const std::string& label) {
  auto scalar_it = iterator_for(sc, big_endian);
  auto lane_it = iterator_for(sc, big_endian);
  std::vector<MultiHit> ref, got;
  scalar_scan(ctx, scalar_it, count, ref);
  lane_scan(ctx, lane_it, count, got);
  EXPECT_EQ(ref, got) << label;
  // Both engines leave the iterator past the scanned range.
  EXPECT_EQ(scalar_it.word0(), lane_it.word0()) << label;
}

TEST(SimdMultiScanDifferential, Md5EveryWidthMatchesScalar) {
  for (const ScanKernels& k : available_kernels()) {
    const std::uint64_t n = k.width;
    for (const Scenario& sc : scenarios(n * 7919)) {
      const std::uint64_t combos = combinations(sc);
      const std::uint64_t count =
          std::min<std::uint64_t>(combos, 3 * n + 5);  // forces a scalar tail

      // Targets at the lane boundaries and in the tail, one duplicated,
      // plus a filter false-positive decoy for the first candidate.
      std::vector<Md5Digest> targets;
      for (const std::uint64_t plant : {std::uint64_t{0}, n - 1, n, n + 1,
                                        3 * n + 2}) {
        if (plant >= count) continue;
        targets.push_back(
            Md5::digest(key_at_offset(sc, plant, false)));
      }
      targets.push_back(targets.front());  // duplicate digest
      targets.push_back(md5_decoy_for(key_at_offset(sc, 0, false)));

      for (const auto& [gate, cfg] : gate_configs()) {
        const Md5MultiContext ctx(targets, shared_tail(sc, false), sc.key_len,
                                  cfg);
        expect_identical_hits(
            ctx, sc, false, count,
            [](const Md5MultiContext& c, PrefixWord0Iterator& it,
               std::uint64_t m, std::vector<MultiHit>& h) {
              md5_multi_scan_prefixes(c, it, m, h);
            },
            [&](const Md5MultiContext& c, PrefixWord0Iterator& it,
                std::uint64_t m, std::vector<MultiHit>& h) {
              k.md5_multi_scan(c, it, m, h);
            },
            "md5 w" + std::to_string(n) + " cs=" + sc.charset + " len=" +
                std::to_string(sc.key_len) + " " + gate);
      }
    }
  }
}

TEST(SimdMultiScanDifferential, Sha1EveryWidthMatchesScalar) {
  for (const ScanKernels& k : available_kernels()) {
    const std::uint64_t n = k.width;
    for (const Scenario& sc : scenarios(n * 104729)) {
      const std::uint64_t combos = combinations(sc);
      const std::uint64_t count = std::min<std::uint64_t>(combos, 3 * n + 5);

      std::vector<Sha1Digest> targets;
      for (const std::uint64_t plant : {std::uint64_t{0}, n - 1, n, n + 1,
                                        3 * n + 2}) {
        if (plant >= count) continue;
        targets.push_back(Sha1::digest(key_at_offset(sc, plant, true)));
      }
      targets.push_back(targets.front());
      // SHA1 decoy: perturb the leading digest bytes, keep bytes 16..19
      // (the early-exit word) — filter hit, failed confirmation.
      Sha1Digest decoy = targets.front();
      decoy.bytes[0] ^= 0x5a;
      targets.push_back(decoy);

      for (const auto& [gate, cfg] : gate_configs()) {
        const Sha1MultiContext ctx(targets, shared_tail(sc, true), sc.key_len,
                                   cfg);
        expect_identical_hits(
            ctx, sc, true, count,
            [](const Sha1MultiContext& c, PrefixWord0Iterator& it,
               std::uint64_t m, std::vector<MultiHit>& h) {
              sha1_multi_scan_prefixes(c, it, m, h);
            },
            [&](const Sha1MultiContext& c, PrefixWord0Iterator& it,
                std::uint64_t m, std::vector<MultiHit>& h) {
              k.sha1_multi_scan(c, it, m, h);
            },
            "sha1 w" + std::to_string(n) + " cs=" + sc.charset + " len=" +
                std::to_string(sc.key_len) + " " + gate);
      }
    }
  }
}

TEST(SimdMultiScanDifferential, FullSpaceSweepEveryWidth) {
  // Exhaustive sweep of a small space with every candidate planted as a
  // target: all widths must report the full hit list in order.
  const Scenario sc{"abcd", 3};
  const std::uint64_t combos = combinations(sc);
  std::vector<Md5Digest> targets;
  for (std::uint64_t i = 0; i < combos; ++i) {
    targets.push_back(Md5::digest(key_at_offset(sc, i, false)));
  }
  const Md5MultiContext ctx(targets, shared_tail(sc, false), sc.key_len);

  auto scalar_it = iterator_for(sc, false);
  std::vector<MultiHit> ref;
  md5_multi_scan_prefixes(ctx, scalar_it, combos, ref);
  ASSERT_EQ(ref.size(), combos);

  for (const ScanKernels& k : available_kernels()) {
    auto it = iterator_for(sc, false);
    std::vector<MultiHit> got;
    k.md5_multi_scan(ctx, it, combos, got);
    EXPECT_EQ(ref, got) << "w" << k.width;
  }
}

TEST(SimdMultiScanDifferential, TenThousandTargetScan) {
  // A big-batch scan: 10000 targets planted across the first 10000
  // candidates of an 8-char space. Every width must find all of them
  // (offset i, slot i) while scanning at O(1) per candidate.
  const Scenario sc{"abcdefghij", 8};
  const std::uint64_t kTargets = combinations(sc);  // 10^4 prefixes
  const std::string tail = shared_tail(sc, false);
  std::vector<Md5Digest> targets;
  targets.reserve(kTargets);
  auto plant_it = iterator_for(sc, false);
  for (std::uint64_t i = 0; i < kTargets; ++i) {
    const std::string key =
        std::string(plant_it.prefix().begin(), plant_it.prefix().end()) + tail;
    targets.push_back(Md5::digest(key));
    plant_it.advance();
  }
  const Md5MultiContext ctx(targets, tail, sc.key_len);

  for (const ScanKernels& k : available_kernels()) {
    auto it = iterator_for(sc, false);
    std::vector<MultiHit> got;
    k.md5_multi_scan(ctx, it, kTargets, got);
    ASSERT_EQ(got.size(), kTargets) << "w" << k.width;
    for (std::uint64_t i = 0; i < kTargets; ++i) {
      ASSERT_EQ(got[i], (MultiHit{i, static_cast<std::uint32_t>(i)}));
    }
  }
}

}  // namespace
}  // namespace gks::hash::simd
