// Differential sweep of the runtime-dispatched SIMD lane engine: every
// width the host can execute must be bit-identical to the scalar
// engines — same hit offsets, same iterator positions — across
// randomized charsets and key lengths, with hits planted at lane
// boundaries (offsets N-1, N, N+1) and in the scalar tail.

#include "hash/simd/dispatch.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "hash/md5.h"
#include "hash/md5_crack.h"
#include "hash/sha1.h"
#include "hash/sha1_crack.h"
#include "support/rng.h"

namespace gks::hash::simd {
namespace {

struct Scenario {
  std::string charset;
  std::size_t key_len;
};

PrefixWord0Iterator iterator_for(const Scenario& sc, bool big_endian) {
  const unsigned prefix_chars =
      static_cast<unsigned>(sc.key_len < 4 ? sc.key_len : 4);
  return PrefixWord0Iterator({sc.charset.data(), sc.charset.size()},
                             prefix_chars, sc.key_len, big_endian);
}

/// The key whose word-0 prefix sits `offset` advances into the scan,
/// with deterministic filler for the fixed tail characters.
std::string key_at_offset(const Scenario& sc, std::uint64_t offset,
                          bool big_endian) {
  auto it = iterator_for(sc, big_endian);
  for (std::uint64_t i = 0; i < offset; ++i) it.advance();
  std::string key(it.prefix().begin(), it.prefix().end());
  SplitMix64 rng(offset * 1000003 + sc.key_len);
  while (key.size() < sc.key_len) {
    key.push_back(sc.charset[rng.below(sc.charset.size())]);
  }
  return key;
}

template <class Ctx, class ScalarFn, class LaneFn>
void expect_identical(const Ctx& ctx, const Scenario& sc, bool big_endian,
                      std::uint64_t count, const ScalarFn& scalar_scan,
                      const LaneFn& lane_scan, const std::string& label) {
  auto scalar_it = iterator_for(sc, big_endian);
  auto lane_it = iterator_for(sc, big_endian);
  const std::optional<std::uint64_t> ref = scalar_scan(ctx, scalar_it, count);
  const std::optional<std::uint64_t> got = lane_scan(ctx, lane_it, count);
  ASSERT_EQ(ref.has_value(), got.has_value()) << label;
  if (ref) {
    EXPECT_EQ(*ref, *got) << label;
  }
  // Both engines leave the iterator at the same position (past the
  // scanned range, or just past the hit).
  EXPECT_EQ(scalar_it.word0(), lane_it.word0()) << label;
}

std::vector<Scenario> scenarios(std::uint64_t seed) {
  const std::vector<std::string> charsets = {
      "ab", "abcdef", "abcdefghijklmnop", "0123456789abcdefATZ"};
  const std::vector<std::size_t> lengths = {1, 2, 3, 4, 5, 8, 12};
  SplitMix64 rng(seed);
  std::vector<Scenario> out;
  for (int i = 0; i < 6; ++i) {
    out.push_back({charsets[rng.below(charsets.size())],
                   lengths[rng.below(lengths.size())]});
  }
  return out;
}

std::uint64_t combinations(const Scenario& sc) {
  std::uint64_t n = 1;
  const std::size_t prefix = sc.key_len < 4 ? sc.key_len : 4;
  for (std::size_t i = 0; i < prefix; ++i) n *= sc.charset.size();
  return n;
}

TEST(SimdDispatch, BaselineWidthAlwaysAvailable) {
  ASSERT_FALSE(available_kernels().empty());
  EXPECT_EQ(available_kernels().front().width, 4u);
  EXPECT_EQ(best_kernels().width, available_kernels().back().width);
  EXPECT_EQ(kernels_for_width(3), nullptr);
}

TEST(SimdDispatch, AvailableIsSubsetOfCompiled) {
  ASSERT_GE(compiled_kernels().size(), available_kernels().size());
  for (const auto& a : available_kernels()) {
    bool found = false;
    for (const auto& c : compiled_kernels()) {
      if (c.width == a.width && c.md5_scan == a.md5_scan &&
          c.sha1_scan == a.sha1_scan) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << a.width;
  }
}

TEST(SimdScanDifferential, Md5EveryWidthMatchesScalar) {
  for (const ScanKernels& k : available_kernels()) {
    const std::uint64_t n = k.width;
    for (const Scenario& sc : scenarios(n * 7919)) {
      const std::uint64_t combos = combinations(sc);
      // Hits at the lane boundaries, in the scalar tail, at the very
      // first candidate, and a guaranteed miss (offset == combos maps
      // to no plant).
      const std::uint64_t plant_offsets[] = {0,     n - 1,      n,
                                             n + 1, 3 * n + 2,  combos};
      for (const std::uint64_t plant : plant_offsets) {
        const std::uint64_t count = std::min<std::uint64_t>(
            combos, 3 * n + 5);  // odd count: forces a scalar tail
        const std::string key =
            key_at_offset(sc, plant < combos ? plant : 0, false);
        const auto target =
            plant < combos ? Md5::digest(key) : Md5::digest("\x01outside");
        const std::string tail =
            key.size() > 4 ? key.substr(4) : std::string();
        const Md5CrackContext ctx(target, tail, key.size());
        expect_identical(
            ctx, sc, false, count,
            [](const Md5CrackContext& c, PrefixWord0Iterator& it,
               std::uint64_t m) { return md5_scan_prefixes(c, it, m); },
            [&](const Md5CrackContext& c, PrefixWord0Iterator& it,
                std::uint64_t m) { return k.md5_scan(c, it, m); },
            "md5 w" + std::to_string(n) + " cs=" + sc.charset + " len=" +
                std::to_string(sc.key_len) + " plant=" +
                std::to_string(plant));
      }
    }
  }
}

TEST(SimdScanDifferential, Sha1EveryWidthMatchesScalar) {
  for (const ScanKernels& k : available_kernels()) {
    const std::uint64_t n = k.width;
    for (const Scenario& sc : scenarios(n * 104729)) {
      const std::uint64_t combos = combinations(sc);
      const std::uint64_t plant_offsets[] = {0,     n - 1,     n,
                                             n + 1, 3 * n + 2, combos};
      for (const std::uint64_t plant : plant_offsets) {
        const std::uint64_t count =
            std::min<std::uint64_t>(combos, 3 * n + 5);
        const std::string key =
            key_at_offset(sc, plant < combos ? plant : 0, true);
        const auto target =
            plant < combos ? Sha1::digest(key) : Sha1::digest("\x01outside");
        const std::string tail =
            key.size() > 4 ? key.substr(4) : std::string();
        const Sha1CrackContext ctx(target, tail, key.size());
        expect_identical(
            ctx, sc, true, count,
            [](const Sha1CrackContext& c, PrefixWord0Iterator& it,
               std::uint64_t m) { return sha1_scan_prefixes(c, it, m); },
            [&](const Sha1CrackContext& c, PrefixWord0Iterator& it,
                std::uint64_t m) { return k.sha1_scan(c, it, m); },
            "sha1 w" + std::to_string(n) + " cs=" + sc.charset + " len=" +
                std::to_string(sc.key_len) + " plant=" +
                std::to_string(plant));
      }
    }
  }
}

TEST(SimdScanDifferential, FullSpaceSweepFindsEveryPlantedOffset) {
  // Exhaustive position sweep on a small space: the hit offset and the
  // post-hit iterator position must match the scalar engine at every
  // single candidate position, for every width.
  const Scenario sc{"abcd", 3};
  const std::uint64_t combos = combinations(sc);
  for (const ScanKernels& k : available_kernels()) {
    for (std::uint64_t plant = 0; plant < combos; ++plant) {
      const std::string key = key_at_offset(sc, plant, false);
      const Md5CrackContext ctx(Md5::digest(key), "", sc.key_len);
      expect_identical(
          ctx, sc, false, combos,
          [](const Md5CrackContext& c, PrefixWord0Iterator& it,
             std::uint64_t m) { return md5_scan_prefixes(c, it, m); },
          [&](const Md5CrackContext& c, PrefixWord0Iterator& it,
              std::uint64_t m) { return k.md5_scan(c, it, m); },
          "sweep w" + std::to_string(k.width) + " plant=" +
              std::to_string(plant));
    }
  }
}

TEST(SimdScanDifferential, ResumesAfterHitAcrossWidths) {
  // Two candidates hashing to the same scan: after the first hit the
  // engine must leave the iterator at hit+1 so a rescan of the
  // remainder finds nothing extra.
  const Scenario sc{"ab", 2};
  for (const ScanKernels& k : available_kernels()) {
    const Md5CrackContext ctx(Md5::digest("aa"), "", 2);
    auto it = iterator_for(sc, false);
    const auto first = k.md5_scan(ctx, it, 4);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, 0u);
    EXPECT_FALSE(k.md5_scan(ctx, it, 3).has_value());
  }
}

}  // namespace
}  // namespace gks::hash::simd
