#include "hash/target_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "support/rng.h"

namespace gks::hash {
namespace {

TEST(TargetIndex, FindsEverySlotOfAWord) {
  const std::vector<std::uint32_t> words = {5, 9, 5, 7, 5};
  const TargetIndex index(words);
  EXPECT_EQ(index.size(), words.size());

  const auto m5 = index.matches(5);
  ASSERT_EQ(m5.size(), 3u);
  // Colliding words report every slot, ascending — a first-match-only
  // lookup would silently drop the later ones.
  EXPECT_EQ(m5[0], 0u);
  EXPECT_EQ(m5[1], 2u);
  EXPECT_EQ(m5[2], 4u);

  const auto m7 = index.matches(7);
  ASSERT_EQ(m7.size(), 1u);
  EXPECT_EQ(m7[0], 3u);

  EXPECT_TRUE(index.matches(6).empty());
}

TEST(TargetIndex, FilterHasNoFalseNegatives) {
  SplitMix64 rng(42);
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 5000; ++i) {
    words.push_back(static_cast<std::uint32_t>(rng()));
  }
  const TargetIndex index(words);
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_TRUE(index.may_match(words[i])) << words[i];
    const auto slots = index.matches(words[i]);
    EXPECT_TRUE(std::find(slots.begin(), slots.end(),
                          static_cast<std::uint32_t>(i)) != slots.end());
  }
}

TEST(TargetIndex, FilterRejectsMostForeignWords) {
  SplitMix64 rng(7);
  std::set<std::uint32_t> in_set;
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 4096; ++i) {
    const auto w = static_cast<std::uint32_t>(rng());
    words.push_back(w);
    in_set.insert(w);
  }
  const TargetIndex index(words);

  // Sized at >= 64 bits per target, the expected false-positive rate is
  // <= 1/64; assert a generous 1/8 so the test never flakes.
  int false_positives = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    const auto w = static_cast<std::uint32_t>(rng());
    if (in_set.count(w)) continue;
    if (index.may_match(w)) {
      ++false_positives;
      // A filter pass on a foreign word must still resolve to no match.
      EXPECT_TRUE(index.matches(w).empty()) << w;
    }
  }
  EXPECT_LT(false_positives, probes / 8);
}

TEST(TargetIndex, SingleTargetAndMinimumFilter) {
  const std::vector<std::uint32_t> words = {0xdeadbeefu};
  const TargetIndex index(words);
  EXPECT_EQ(index.size(), 1u);
  EXPECT_GE(index.bucket_mask() + 1u, 64u);  // 64-bit floor
  EXPECT_TRUE(index.may_match(0xdeadbeefu));
  ASSERT_EQ(index.matches(0xdeadbeefu).size(), 1u);
  EXPECT_EQ(index.matches(0xdeadbeefu)[0], 0u);
}

TEST(TargetIndex, FilterScalesWithTargetCount) {
  std::vector<std::uint32_t> words(65536);
  SplitMix64 rng(3);
  for (auto& w : words) w = static_cast<std::uint32_t>(rng());
  const TargetIndex index(words);
  // 64 bits per target, next power of two: 2^22 buckets.
  EXPECT_EQ(index.bucket_mask() + 1u, 1u << 22);
  EXPECT_STREQ(index.filter_kind(), "direct");
}

TargetIndex::Config forced_bloom() {
  TargetIndex::Config cfg;
  cfg.max_direct_bits = 1;  // any batch overflows the direct cap
  return cfg;
}

TEST(TargetIndex, BloomModeHasNoFalseNegatives) {
  SplitMix64 rng(11);
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 50000; ++i) {
    words.push_back(static_cast<std::uint32_t>(rng()));
  }
  const TargetIndex index(words, forced_bloom());
  EXPECT_STREQ(index.filter_kind(), "bloom");
  for (std::size_t i = 0; i < words.size(); ++i) {
    ASSERT_TRUE(index.may_match(words[i])) << words[i];
    const auto slots = index.matches(words[i]);
    ASSERT_TRUE(std::find(slots.begin(), slots.end(),
                          static_cast<std::uint32_t>(i)) != slots.end());
  }
}

TEST(TargetIndex, BloomModeHoldsDesignedFalsePositiveRate) {
  SplitMix64 rng(13);
  std::set<std::uint32_t> in_set;
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 4096; ++i) {
    const auto w = static_cast<std::uint32_t>(rng());
    words.push_back(w);
    in_set.insert(w);
  }
  const TargetIndex index(words, forced_bloom());
  ASSERT_STREQ(index.filter_kind(), "bloom");

  // Designed for 1/64; assert a generous 1/8 so the test never flakes.
  int false_positives = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    const auto w = static_cast<std::uint32_t>(rng());
    if (in_set.count(w)) continue;
    if (index.may_match(w)) {
      ++false_positives;
      EXPECT_TRUE(index.matches(w).empty()) << w;
    }
  }
  EXPECT_LT(false_positives, probes / 8);
}

TEST(TargetIndex, MillionTargetsEngageCacheResidentBloom) {
  SplitMix64 rng(17);
  std::vector<std::uint32_t> words(1u << 20);
  for (auto& w : words) w = static_cast<std::uint32_t>(rng());
  const TargetIndex index(words);  // default config
  // A direct array would want 8 MiB at 1/64; the Bloom gate fits the
  // same rate in ~16 bits/key.
  EXPECT_STREQ(index.filter_kind(), "bloom");
  EXPECT_LE(index.filter_bytes(), std::size_t{4} << 20);

  for (std::size_t i = 0; i < words.size(); i += 997) {
    ASSERT_TRUE(index.may_match(words[i]));
    const auto slots = index.matches(words[i]);
    ASSERT_TRUE(std::find(slots.begin(), slots.end(),
                          static_cast<std::uint32_t>(i)) != slots.end());
  }

  int false_positives = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    if (index.may_match(static_cast<std::uint32_t>(rng()))) {
      ++false_positives;
    }
  }
  // ~1/64 designed + ~1/4096 true word matches; 1/8 is flake-proof.
  EXPECT_LT(false_positives, probes / 8);
}

TEST(TargetIndex, GateOffAlwaysPassesAndLookupStaysExact) {
  TargetIndex::Config cfg;
  cfg.gate = false;
  const std::vector<std::uint32_t> words = {5, 9, 5};
  const TargetIndex index(words, cfg);
  EXPECT_STREQ(index.filter_kind(), "off");
  SplitMix64 rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(index.may_match(static_cast<std::uint32_t>(rng())));
  }
  ASSERT_EQ(index.matches(5).size(), 2u);
  EXPECT_TRUE(index.matches(6).empty());
}

TEST(TargetIndex, AddMergesKeepingSlotsAscending) {
  const std::vector<std::uint32_t> words = {5, 9, 7};
  TargetIndex index(words);
  index.add(std::vector<std::uint32_t>{5, 11}, 3);
  EXPECT_EQ(index.size(), 5u);

  const auto m5 = index.matches(5);
  ASSERT_EQ(m5.size(), 2u);
  EXPECT_EQ(m5[0], 0u);
  EXPECT_EQ(m5[1], 3u);
  EXPECT_TRUE(index.may_match(11));
  ASSERT_EQ(index.matches(11).size(), 1u);
  EXPECT_EQ(index.matches(11)[0], 4u);
}

TEST(TargetIndex, AddBeyondGateCapacityRebuilds) {
  SplitMix64 rng(29);
  std::vector<std::uint32_t> words(1000);
  for (auto& w : words) w = static_cast<std::uint32_t>(rng());
  TargetIndex index(words, forced_bloom());
  const std::size_t before = index.filter_bytes();

  std::vector<std::uint32_t> more(5000);
  for (auto& w : more) w = static_cast<std::uint32_t>(rng());
  index.add(more, 1000);
  EXPECT_EQ(index.size(), 6000u);
  // 6x growth must have re-sized the gate, or the rate would drift.
  EXPECT_GT(index.filter_bytes(), before);
  for (std::size_t i = 0; i < more.size(); i += 97) {
    const auto slots = index.matches(more[i]);
    ASSERT_TRUE(std::find(slots.begin(), slots.end(),
                          static_cast<std::uint32_t>(1000 + i)) != slots.end());
  }
}

TEST(TargetIndex, RemoveLeavesNoGhostBits) {
  const std::vector<std::uint32_t> words = {100, 200, 300};
  TargetIndex index(words);
  EXPECT_EQ(index.remove(std::vector<std::uint32_t>{1}), 1u);
  EXPECT_EQ(index.size(), 2u);
  EXPECT_TRUE(index.matches(200).empty());
  // Direct mode rebuilds the exact bit array: the detached word's bit
  // is genuinely gone, not just unreachable.
  EXPECT_FALSE(index.may_match(200));
  EXPECT_TRUE(index.may_match(100));
  ASSERT_EQ(index.matches(300).size(), 1u);
  EXPECT_EQ(index.matches(300)[0], 2u);  // surviving slots keep numbers

  EXPECT_EQ(index.remove(std::vector<std::uint32_t>{7}), 0u);  // unknown slot
}

TEST(TargetIndex, StatsCountGateTraffic) {
  TargetIndexStats stats;
  TargetIndex::Config cfg;
  cfg.stats = &stats;
  const std::vector<std::uint32_t> words = {5, 9};
  const TargetIndex index(words, cfg);

  EXPECT_FALSE(index.matches(5).empty());  // gate hit, real match
  EXPECT_TRUE(index.matches(6).empty());   // gate hit, word-level FP
  index.note_false_positive();             // confirm-level FP
  EXPECT_EQ(stats.gate_hits.load(), 2u);
  EXPECT_EQ(stats.false_positives.load(), 2u);
}

}  // namespace
}  // namespace gks::hash
