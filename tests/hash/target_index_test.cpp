#include "hash/target_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "support/rng.h"

namespace gks::hash {
namespace {

TEST(TargetIndex, FindsEverySlotOfAWord) {
  const std::vector<std::uint32_t> words = {5, 9, 5, 7, 5};
  const TargetIndex index(words);
  EXPECT_EQ(index.size(), words.size());

  const auto m5 = index.matches(5);
  ASSERT_EQ(m5.size(), 3u);
  // Colliding words report every slot, ascending — a first-match-only
  // lookup would silently drop the later ones.
  EXPECT_EQ(m5[0], 0u);
  EXPECT_EQ(m5[1], 2u);
  EXPECT_EQ(m5[2], 4u);

  const auto m7 = index.matches(7);
  ASSERT_EQ(m7.size(), 1u);
  EXPECT_EQ(m7[0], 3u);

  EXPECT_TRUE(index.matches(6).empty());
}

TEST(TargetIndex, FilterHasNoFalseNegatives) {
  SplitMix64 rng(42);
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 5000; ++i) {
    words.push_back(static_cast<std::uint32_t>(rng()));
  }
  const TargetIndex index(words);
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_TRUE(index.may_match(words[i])) << words[i];
    const auto slots = index.matches(words[i]);
    EXPECT_TRUE(std::find(slots.begin(), slots.end(),
                          static_cast<std::uint32_t>(i)) != slots.end());
  }
}

TEST(TargetIndex, FilterRejectsMostForeignWords) {
  SplitMix64 rng(7);
  std::set<std::uint32_t> in_set;
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 4096; ++i) {
    const auto w = static_cast<std::uint32_t>(rng());
    words.push_back(w);
    in_set.insert(w);
  }
  const TargetIndex index(words);

  // Sized at >= 64 bits per target, the expected false-positive rate is
  // <= 1/64; assert a generous 1/8 so the test never flakes.
  int false_positives = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    const auto w = static_cast<std::uint32_t>(rng());
    if (in_set.count(w)) continue;
    if (index.may_match(w)) {
      ++false_positives;
      // A filter pass on a foreign word must still resolve to no match.
      EXPECT_TRUE(index.matches(w).empty()) << w;
    }
  }
  EXPECT_LT(false_positives, probes / 8);
}

TEST(TargetIndex, SingleTargetAndMinimumFilter) {
  const std::vector<std::uint32_t> words = {0xdeadbeefu};
  const TargetIndex index(words);
  EXPECT_EQ(index.size(), 1u);
  EXPECT_GE(index.bucket_mask() + 1u, 64u);  // 64-bit floor
  EXPECT_TRUE(index.may_match(0xdeadbeefu));
  ASSERT_EQ(index.matches(0xdeadbeefu).size(), 1u);
  EXPECT_EQ(index.matches(0xdeadbeefu)[0], 0u);
}

TEST(TargetIndex, FilterScalesWithTargetCount) {
  std::vector<std::uint32_t> words(65536);
  SplitMix64 rng(3);
  for (auto& w : words) w = static_cast<std::uint32_t>(rng());
  const TargetIndex index(words);
  // 64 bits per target, next power of two: 2^22 buckets.
  EXPECT_EQ(index.bucket_mask() + 1u, 1u << 22);
}

}  // namespace
}  // namespace gks::hash
