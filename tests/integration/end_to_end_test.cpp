#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/cracker.h"
#include "core/scan_engine.h"
#include "hash/md5.h"
#include "hash/sha1.h"
#include "keyspace/dictionary.h"
#include "keyspace/keyspace_generator.h"
#include "support/rng.h"

namespace gks {
namespace {

using core::ClusterCracker;
using core::ClusterDevice;
using core::ClusterNode;
using core::ClusterOptions;
using core::CrackRequest;
using core::SimGpuMode;

TEST(EndToEnd, RandomKeysRoundTripThroughTheLocalCracker) {
  // Property: hash a random key, crack it back, recover exactly it.
  SplitMix64 rng(99);
  const keyspace::Charset cs("abcdef");
  const core::LocalCracker cracker(2);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t len = 1 + rng.below(4);
    std::string key;
    for (std::size_t i = 0; i < len; ++i) key.push_back(cs.at(rng.below(6)));

    CrackRequest req;
    req.algorithm =
        trial % 2 == 0 ? hash::Algorithm::kMd5 : hash::Algorithm::kSha1;
    req.charset = cs;
    req.min_length = 1;
    req.max_length = 4;
    req.target_hex = req.algorithm == hash::Algorithm::kMd5
                         ? hash::Md5::digest(key).to_hex()
                         : hash::Sha1::digest(key).to_hex();

    const auto result = cracker.crack(req);
    EXPECT_TRUE(result.found) << key;
    // Another preimage is astronomically unlikely in a space this
    // small, so expect the exact key back.
    EXPECT_EQ(result.key, key);
  }
}

TEST(EndToEnd, ExecuteModeClusterCracksForReal) {
  // Small mixed cluster in execute mode: simulated GPUs really scan.
  ClusterNode leaf{"leaf", {ClusterDevice::gpu("8600M")}, {}, {}};
  ClusterNode root{"root", {ClusterDevice::gpu("540M")}, {leaf}, {}};

  ClusterOptions opts;
  opts.time_scale = 1e-3;
  opts.gpu_mode = SimGpuMode::kExecute;
  opts.tune_scratch = u128(1u << 14);
  opts.agent.round_virtual_target_s = 0.2;
  opts.agent.tune.start_batch = u128(2048);

  CrackRequest req;
  req.algorithm = hash::Algorithm::kMd5;
  req.target_hex = hash::Md5::digest("eddc").to_hex();
  req.charset = keyspace::Charset("cde");
  req.min_length = 1;
  req.max_length = 5;

  ClusterCracker cluster(root, opts);
  const auto report = cluster.crack(req);
  ASSERT_FALSE(report.found.empty());
  EXPECT_EQ(report.found[0].value, "eddc");
}

TEST(EndToEnd, ModelAndExecuteClustersAgree) {
  // The two device modes must reach the same conclusion on the same
  // request (the duality cross-check of DESIGN.md).
  CrackRequest req;
  req.algorithm = hash::Algorithm::kSha1;
  req.target_hex = hash::Sha1::digest("ddc").to_hex();
  req.charset = keyspace::Charset("cd");
  req.min_length = 1;
  req.max_length = 6;

  ClusterNode solo{"solo", {ClusterDevice::gpu("660")}, {}, {}};

  ClusterOptions execute;
  execute.gpu_mode = SimGpuMode::kExecute;
  execute.tune_scratch = u128(1u << 12);
  execute.agent.round_virtual_target_s = 0.1;
  execute.agent.tune.start_batch = u128(1024);
  const auto exec_report =
      ClusterCracker(solo, execute).crack(req);

  ClusterOptions model = execute;
  model.gpu_mode = SimGpuMode::kModel;
  model.planted_key = "ddc";
  const auto model_report = ClusterCracker(solo, model).crack(req);

  ASSERT_FALSE(exec_report.found.empty());
  ASSERT_FALSE(model_report.found.empty());
  EXPECT_EQ(exec_report.found[0].id, model_report.found[0].id);
  EXPECT_EQ(exec_report.found[0].value, model_report.found[0].value);
}

TEST(EndToEnd, MixedCpuAndGpuNodeCracksTogether) {
  // A node holding a real CPU device *and* a simulated GPU — the
  // heterogeneity the paper's pattern is built for, across device
  // kinds, not just GPU models. Execute mode so both really scan.
  ClusterNode root{"hybrid-node",
                   {ClusterDevice::cpu(2), ClusterDevice::gpu("8600M")},
                   {},
                   {}};

  ClusterOptions opts;
  opts.time_scale = 1.0;  // the CPU device lives in real time
  opts.gpu_mode = SimGpuMode::kExecute;
  opts.tune_scratch = u128(1u << 14);
  opts.agent.round_virtual_target_s = 0.1;
  opts.agent.tune.start_batch = u128(2048);

  CrackRequest req;
  req.algorithm = hash::Algorithm::kMd5;
  req.target_hex = hash::Md5::digest("feeb").to_hex();
  req.charset = keyspace::Charset("bdefz");
  req.min_length = 1;
  req.max_length = 5;

  ClusterCracker cluster(root, opts);
  const auto report = cluster.crack(req);
  ASSERT_FALSE(report.found.empty());
  EXPECT_EQ(report.found[0].value, "feeb");
  ASSERT_EQ(report.members.size(), 2u);
  // Both device kinds were tuned and participated in the split.
  EXPECT_GT(report.members[0].throughput, 0.0);
  EXPECT_GT(report.members[1].throughput, 0.0);
}

TEST(EndToEnd, DictionaryHybridAttackThroughTheGenericPattern) {
  // Pattern generality: a dictionary × digits enumeration cracked via
  // exhaustive testing of generator candidates.
  const keyspace::DictionaryGenerator words(
      {"password", "dragon", "letmein"},
      keyspace::DictionaryGenerator::Mangle::kCommonCase);
  const keyspace::KeyspaceGenerator digits(
      keyspace::KeyCodec(keyspace::Charset::digits(),
                         keyspace::DigitOrder::kSuffixFastest),
      2, 2);
  const keyspace::HybridGenerator hybrid(words, digits);

  const std::string secret = "Dragon42";
  const auto target = hash::Md5::digest(secret);
  std::string found;
  std::string candidate;
  for (u128 id(0); id < hybrid.size(); ++id) {
    hybrid.generate(id, candidate);
    if (hash::Md5::digest(candidate) == target) {
      found = candidate;
      break;
    }
  }
  EXPECT_EQ(found, secret);
}

}  // namespace
}  // namespace gks
