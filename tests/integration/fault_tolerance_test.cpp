#include <gtest/gtest.h>

#include "core/cluster.h"
#include "hash/md5.h"

namespace gks {
namespace {

using core::ClusterCracker;
using core::ClusterDevice;
using core::ClusterNode;
using core::ClusterOptions;
using core::CrackRequest;
using core::SimGpuMode;

CrackRequest planted_request(const std::string& key) {
  CrackRequest r;
  r.algorithm = hash::Algorithm::kMd5;
  r.target_hex = hash::Md5::digest(key).to_hex();
  r.charset = keyspace::Charset::alphanumeric();
  r.min_length = 1;
  r.max_length = 8;
  return r;
}

ClusterOptions base_options(const std::string& key) {
  ClusterOptions opts;
  opts.time_scale = 5e-4;
  opts.gpu_mode = SimGpuMode::kModel;
  opts.planted_key = key;
  opts.agent.round_virtual_target_s = 20.0;
  opts.agent.child_timeout_factor = 3.0;
  opts.agent.min_timeout_real_s = 0.1;
  return opts;
}

TEST(FaultTolerance, LeafCrashMidSearchIsDetectedAndCovered) {
  // Two leaves; one dies mid-search. The search must still find the
  // planted key (its interval gets requeued onto survivors) and the
  // failure must be reported.
  ClusterNode left{"left", {ClusterDevice::gpu("660")}, {}, {}};
  ClusterNode right{"right", {ClusterDevice::gpu("550Ti")}, {}, {}};
  ClusterNode root{"root", {ClusterDevice::gpu("540M")}, {left, right}, {}};

  const std::string key = "zYx9Qw7a";  // deep in the space
  auto opts = base_options(key);
  opts.failures = {{"right", 40.0}};  // dies during round 2

  ClusterCracker cluster(root, opts);
  const auto report = cluster.crack(planted_request(key));

  EXPECT_GE(report.failures_detected, 1u);
  ASSERT_FALSE(report.found.empty());
  EXPECT_EQ(report.found[0].value, key);
}

TEST(FaultTolerance, SurvivorsAbsorbTheDeadNodesShare) {
  ClusterNode left{"left", {ClusterDevice::gpu("660")}, {}, {}};
  ClusterNode right{"right", {ClusterDevice::gpu("8800")}, {}, {}};
  ClusterNode root{"root", {ClusterDevice::gpu("540M")}, {left, right}, {}};

  const std::string key = "zzZZ99Xq";  // very deep: long search
  auto opts = base_options(key);
  opts.failures = {{"right", 30.0}};

  ClusterCracker cluster(root, opts);
  const auto report = cluster.crack(planted_request(key));

  ASSERT_EQ(report.members.size(), 3u);
  // The dead child stops contributing but the others keep going; the
  // search still terminates with the key.
  ASSERT_FALSE(report.found.empty());
  bool right_failed = false;
  for (const auto& m : report.members) {
    if (m.name == "right" && m.failed) right_failed = true;
  }
  EXPECT_TRUE(right_failed);
}

TEST(FaultTolerance, DispatcherSubtreeLossBlocksOnlyItsBranch) {
  // The paper's caveat: "the inactivity of a dispatching node would
  // block the contribution of all the nodes in the dispatching sub
  // tree". Kill the mid-level dispatcher: its leaf is lost too, but
  // the root still completes with its own devices.
  ClusterNode deep_leaf{"deep-leaf", {ClusterDevice::gpu("8800")}, {}, {}};
  ClusterNode mid{"mid", {ClusterDevice::gpu("8600M")}, {deep_leaf}, {}};
  ClusterNode root{"root", {ClusterDevice::gpu("660")}, {mid}, {}};

  const std::string key = "Qq7Zz9aa";
  auto opts = base_options(key);
  opts.failures = {{"mid", 35.0}};

  ClusterCracker cluster(root, opts);
  const auto report = cluster.crack(planted_request(key));

  EXPECT_GE(report.failures_detected, 1u);
  ASSERT_FALSE(report.found.empty());
  EXPECT_EQ(report.found[0].value, key);
}

TEST(FaultTolerance, NoFailuresMeansNoFalsePositives) {
  ClusterNode left{"left", {ClusterDevice::gpu("660")}, {}, {}};
  ClusterNode root{"root", {ClusterDevice::gpu("540M")}, {left}, {}};
  const std::string key = "abZ93kx";
  ClusterCracker cluster(root, base_options(key));
  const auto report = cluster.crack(planted_request(key));
  EXPECT_EQ(report.failures_detected, 0u);
  for (const auto& m : report.members) EXPECT_FALSE(m.failed);
}

}  // namespace
}  // namespace gks
