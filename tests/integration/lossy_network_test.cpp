// Dispatch robustness under message loss: dropped WorkAssigns or
// WorkResults look like slow children; the round timeout requeues
// their intervals, so coverage and correctness must survive any loss
// rate below total blackout (at the price of throughput).

#include <gtest/gtest.h>

#include <memory>

#include "dispatch/agent.h"
#include "simnet/network.h"

namespace gks {
namespace {

using dispatch::AgentConfig;
using dispatch::IntervalSearcher;
using dispatch::NodeAgent;
using dispatch::ScanOutcome;

class PlantedSearcher final : public IntervalSearcher {
 public:
  PlantedSearcher(double peak, std::vector<u128> planted)
      : peak_(peak), planted_(std::move(planted)) {}

  ScanOutcome scan(const keyspace::Interval& interval) override {
    ScanOutcome out;
    out.tested = interval.size();
    out.busy_virtual_s = interval.size().to_double() / peak_ + 1e-3;
    for (const u128& id : planted_) {
      if (interval.contains(id)) out.found.push_back({id, "hit"});
    }
    return out;
  }
  bool is_simulated() const override { return true; }
  double theoretical_throughput() const override { return peak_; }
  std::string description() const override { return "planted"; }

 private:
  double peak_;
  std::vector<u128> planted_;
};

TEST(LossyNetwork, SearchSurvivesHeavyMessageLoss) {
  simnet::Network net(1e-4, /*seed=*/33);
  const auto root = net.add_node("root");
  const auto leaf = net.add_node("leaf");
  simnet::LinkSpec lossy;
  lossy.loss_probability = 0.3;  // 30% of all messages vanish
  net.connect(root, leaf, lossy);

  AgentConfig config;
  config.tune.start_batch = u128(1u << 16);
  config.round_virtual_target_s = 2.0;
  config.min_timeout_real_s = 0.15;

  // Root holds the only device guaranteed reachable; the leaf helps
  // when its messages survive. The planted id must be found either
  // way because lost child work is requeued.
  std::vector<std::unique_ptr<IntervalSearcher>> root_devices;
  root_devices.push_back(std::make_unique<PlantedSearcher>(
      1e9, std::vector<u128>{u128(7'500'000'000ull)}));
  NodeAgent root_agent(net, root, std::move(root_devices), config);

  std::vector<std::unique_ptr<IntervalSearcher>> leaf_devices;
  leaf_devices.push_back(std::make_unique<PlantedSearcher>(
      1e9, std::vector<u128>{u128(7'500'000'000ull)}));
  NodeAgent leaf_agent(net, leaf, std::move(leaf_devices), config);
  net.start(leaf, [&leaf_agent] { leaf_agent.serve(); });

  const keyspace::Interval space(u128(0), u128(10'000'000'000ull));
  const auto report =
      root_agent.run_root(space, keyspace::Interval(u128(0), u128(1u << 22)));
  net.join_all();

  ASSERT_FALSE(report.found.empty());
  EXPECT_EQ(report.found[0].id, u128(7'500'000'000ull));
}

TEST(LossyNetwork, TotalBlackoutDegradesToLocalDevices) {
  simnet::Network net(1e-4, /*seed=*/5);
  const auto root = net.add_node("root");
  const auto leaf = net.add_node("leaf");
  simnet::LinkSpec dead;
  dead.loss_probability = 1.0;
  net.connect(root, leaf, dead);

  AgentConfig config;
  config.tune.start_batch = u128(1u << 16);
  config.round_virtual_target_s = 2.0;
  config.min_timeout_real_s = 0.1;
  config.orphan_timeout_real_s = 0.5;  // the leaf unwinds quickly

  std::vector<std::unique_ptr<IntervalSearcher>> root_devices;
  root_devices.push_back(
      std::make_unique<PlantedSearcher>(1e9, std::vector<u128>{}));
  NodeAgent root_agent(net, root, std::move(root_devices), config);

  std::vector<std::unique_ptr<IntervalSearcher>> leaf_devices;
  leaf_devices.push_back(
      std::make_unique<PlantedSearcher>(1e9, std::vector<u128>{}));
  NodeAgent leaf_agent(net, leaf, std::move(leaf_devices), config);
  net.start(leaf, [&leaf_agent] { leaf_agent.serve(); });

  const keyspace::Interval space(u128(0), u128(4'000'000'000ull));
  const auto report =
      root_agent.run_root(space, keyspace::Interval(u128(0), u128(1u << 22)));
  net.join_all();

  // The unreachable child counts as a failure and the root covers the
  // whole space alone.
  EXPECT_GE(report.failures_detected, 1u);
  EXPECT_EQ(report.tested, space.size());
}

}  // namespace
}  // namespace gks
