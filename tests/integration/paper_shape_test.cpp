// Cross-module checks that the paper's quantitative *shape* holds:
// who wins, by what rough factor, and where the crossovers fall.
// Absolute MKey/s values are our simulator's, not the authors'
// testbed's — see EXPERIMENTS.md.

#include <gtest/gtest.h>

#include "baselines/profiles.h"
#include "core/cluster.h"
#include "core/gpu_backend.h"
#include "hash/md5.h"
#include "simgpu/lowering.h"
#include "simgpu/model.h"
#include "simgpu/simt.h"

namespace gks {
namespace {

using baselines::Tool;
using simgpu::SimtSimulator;

double ours_mkeys(hash::Algorithm alg, const char* device) {
  const auto& dev = simgpu::device_by_name(device);
  return SimtSimulator::device_throughput(
             dev, core::our_kernel_profile(alg, dev.cc)) /
         1e6;
}

TEST(PaperShape, TableEightDeviceRankingMd5) {
  // Paper: 8600M 71 < 540M 214 < 8800 480 < 550Ti 654 < 660 1841.
  const double d8600 = ours_mkeys(hash::Algorithm::kMd5, "8600M");
  const double d540 = ours_mkeys(hash::Algorithm::kMd5, "540M");
  const double d8800 = ours_mkeys(hash::Algorithm::kMd5, "8800");
  const double d550 = ours_mkeys(hash::Algorithm::kMd5, "550Ti");
  const double d660 = ours_mkeys(hash::Algorithm::kMd5, "660");
  EXPECT_LT(d8600, d540);
  EXPECT_LT(d540, d8800);
  EXPECT_LT(d8800, d550);
  EXPECT_LT(d550, d660);
}

TEST(PaperShape, TableEightRoughFactorsMd5) {
  // The Kepler flagship leads the laptop Fermi part by ~5x in the
  // paper (1841/214 = 8.6 measured; with our ILP-2 Fermi kernel the
  // gap narrows). Keep a broad but meaningful band.
  const double d540 = ours_mkeys(hash::Algorithm::kMd5, "540M");
  const double d660 = ours_mkeys(hash::Algorithm::kMd5, "660");
  EXPECT_GT(d660 / d540, 3.0);
  EXPECT_LT(d660 / d540, 12.0);
}

TEST(PaperShape, Sha1IsSeveralTimesSlowerThanMd5) {
  // Paper, 660: MD5 1841 vs SHA1 390 — a factor ~4.7.
  const double md5 = ours_mkeys(hash::Algorithm::kMd5, "660");
  const double sha1 = ours_mkeys(hash::Algorithm::kSha1, "660");
  EXPECT_GT(md5 / sha1, 2.5);
  EXPECT_LT(md5 / sha1, 7.0);
}

TEST(PaperShape, OursBeatsOrMatchesEveryToolOnEveryDevice) {
  // Table VIII: "in most cases outperforms well-known brute-force
  // tools on a single GPU" — never loses by more than a whisker.
  for (const char* device : {"8600M", "8800", "540M", "550Ti", "660"}) {
    const auto& dev = simgpu::device_by_name(device);
    const double ours = SimtSimulator::device_throughput(
        dev, baselines::tool_profile(Tool::kOurs, hash::Algorithm::kMd5,
                                     dev.cc));
    for (const Tool tool : {Tool::kBarsWf, Tool::kCryptohaze}) {
      const double other = SimtSimulator::device_throughput(
          dev, baselines::tool_profile(tool, hash::Algorithm::kMd5, dev.cc));
      EXPECT_GT(ours, other * 0.93)
          << baselines::tool_name(tool) << " on " << device;
    }
  }
}

TEST(PaperShape, EfficiencyVersusTheoreticalPerFamily) {
  // Paper efficiency vs theoretical: 8600M 86%, 8800 85%, 540M 60%,
  // 550Ti 68%, 660 99.5%. The family-level pattern: cc 1.x high,
  // Fermi ~2/3 (without ILP), Kepler near 1. Our Fermi kernel uses
  // ILP=2, so we check the kernel the paper measured (ILP=1) here.
  const auto efficiency = [](const char* device) {
    const auto& dev = simgpu::device_by_name(device);
    auto profile = core::our_kernel_profile(hash::Algorithm::kMd5, dev.cc);
    profile.ilp = 1;
    const double measured = SimtSimulator::device_throughput(dev, profile);
    const double theoretical = simgpu::ThroughputModel::theoretical_throughput(
        dev, profile.per_candidate);
    return measured / theoretical;
  };
  EXPECT_GT(efficiency("8800"), 0.80);
  EXPECT_NEAR(efficiency("550Ti"), 2.0 / 3.0, 0.07);
  EXPECT_GT(efficiency("660"), 0.93);
}

TEST(PaperShape, TableNineNetworkEfficiency) {
  // Table IX: the full network reaches ≈ the sum of its devices'
  // throughput (0.852 of theoretical for MD5 in the paper; our
  // device-level simulation sits closer to its own theoretical bound,
  // so the network efficiency lands higher — the dispatch loss itself
  // is what must stay small).
  const std::string key = "zWq9R2xZ";
  core::ClusterOptions opts;
  opts.time_scale = 5e-4;
  opts.gpu_mode = core::SimGpuMode::kModel;
  opts.planted_key = key;
  opts.agent.round_virtual_target_s = 25.0;

  core::CrackRequest req;
  req.algorithm = hash::Algorithm::kMd5;
  req.target_hex = hash::Md5::digest(key).to_hex();
  req.charset = keyspace::Charset::alphanumeric();
  req.min_length = 1;
  req.max_length = 8;

  core::ClusterCracker cluster(core::ClusterCracker::paper_topology(), opts);
  const auto report = cluster.crack(req);

  double device_sum = 0;
  for (const auto& m : report.members) device_sum += m.throughput;
  const double dispatch_efficiency = report.throughput / device_sum;
  EXPECT_GT(dispatch_efficiency, 0.80);  // near-perfect parallelism
  EXPECT_GT(report.efficiency, 0.75);    // vs theoretical, paper: 0.852
}

TEST(PaperShape, ReversalAblationSpeedupNearOneQuarter) {
  // Section V-B: the reversal trick is "a speedup of about 1.25 in
  // almost all architectures" — measure it in the simulator on the
  // 8800 (cc 1.x, where no other effect interferes).
  const auto& dev = simgpu::device_by_name("8800");
  simgpu::LoweringOptions opt{dev.cc};
  simgpu::KernelProfile plain;
  plain.per_candidate = simgpu::lower(
      simgpu::trace_md5(simgpu::Md5KernelVariant::kPlainCompiled), opt);
  simgpu::KernelProfile reversed;
  reversed.per_candidate = simgpu::lower(
      simgpu::trace_md5(simgpu::Md5KernelVariant::kReversed), opt);
  const double speedup =
      SimtSimulator::device_throughput(dev, reversed) /
      SimtSimulator::device_throughput(dev, plain);
  EXPECT_NEAR(speedup, 1.25, 0.20);
}

}  // namespace
}  // namespace gks
