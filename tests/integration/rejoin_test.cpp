// Dynamic-network reconfiguration (Section III): "the proposed pattern
// can be extended to a dynamic network ... executing the above
// mentioned steps each time the number of depending nodes or their
// actual performance metrics vary", including nodes that become
// "temporarily inactive". A child partitioned mid-search is declared
// dead and its work requeued; when the path heals, the periodic
// re-probe restores it and quotas grow back.

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "dispatch/agent.h"
#include "simnet/network.h"

namespace gks {
namespace {

using dispatch::AgentConfig;
using dispatch::IntervalSearcher;
using dispatch::NodeAgent;
using dispatch::ScanOutcome;

class SteadySearcher final : public IntervalSearcher {
 public:
  explicit SteadySearcher(double peak) : peak_(peak) {}
  ScanOutcome scan(const keyspace::Interval& interval) override {
    ScanOutcome out;
    out.tested = interval.size();
    out.busy_virtual_s = interval.size().to_double() / peak_ + 1e-3;
    return out;
  }
  bool is_simulated() const override { return true; }
  double theoretical_throughput() const override { return peak_; }
  std::string description() const override { return "steady"; }

 private:
  double peak_;
};

TEST(Rejoin, PartitionedChildRejoinsWhenThePathHeals) {
  simnet::Network net(2e-3, /*seed=*/3);
  const auto root = net.add_node("root");
  const auto leaf = net.add_node("leaf");
  net.connect(root, leaf);

  AgentConfig config;
  config.tune.start_batch = u128(1u << 16);
  config.round_virtual_target_s = 2.0;
  config.min_timeout_real_s = 0.05;
  config.orphan_timeout_real_s = 30.0;  // survive the partition
  config.allow_rejoin = true;
  config.reprobe_every_rounds = 2;

  std::vector<std::unique_ptr<IntervalSearcher>> root_devices;
  root_devices.push_back(std::make_unique<SteadySearcher>(1e9));
  NodeAgent root_agent(net, root, std::move(root_devices), config);

  std::vector<std::unique_ptr<IntervalSearcher>> leaf_devices;
  leaf_devices.push_back(std::make_unique<SteadySearcher>(1e9));
  NodeAgent leaf_agent(net, leaf, std::move(leaf_devices), config);
  net.start(leaf, [&leaf_agent] { leaf_agent.serve(); });

  // Partition the link shortly after the search starts; heal it later.
  std::thread chaos([&net, root, leaf] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    net.set_link_loss(root, leaf, 1.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(160));
    net.set_link_loss(root, leaf, 0.0);
  });

  // Big enough that rounds continue long after the heal.
  const keyspace::Interval space(u128(0), u128(120'000'000'000ull));
  const auto report =
      root_agent.run_root(space, keyspace::Interval(u128(0), u128(1u << 22)));
  chaos.join();
  net.join_all();

  // Full coverage despite the partition, the failure was detected, and
  // the healed child worked again afterwards (it is alive at the end
  // and contributed more than its pre-partition rounds alone could).
  EXPECT_EQ(report.tested, space.size());
  EXPECT_GE(report.failures_detected, 1u);
  ASSERT_EQ(report.members.size(), 2u);
  EXPECT_FALSE(report.members[1].failed) << "child should have rejoined";
  EXPECT_GT(report.members[1].tested, u128(0));
}

TEST(Rejoin, DisabledRejoinKeepsTheChildDead) {
  simnet::Network net(2e-3, /*seed=*/4);
  const auto root = net.add_node("root");
  const auto leaf = net.add_node("leaf");
  net.connect(root, leaf);

  AgentConfig config;
  config.tune.start_batch = u128(1u << 16);
  config.round_virtual_target_s = 2.0;
  config.min_timeout_real_s = 0.05;
  // Long enough to survive the 160 ms partition; short enough that the
  // leaf unwinds promptly if the root's final StopSearch was lost in it.
  config.orphan_timeout_real_s = 1.0;
  config.allow_rejoin = false;

  std::vector<std::unique_ptr<IntervalSearcher>> root_devices;
  root_devices.push_back(std::make_unique<SteadySearcher>(1e9));
  NodeAgent root_agent(net, root, std::move(root_devices), config);

  std::vector<std::unique_ptr<IntervalSearcher>> leaf_devices;
  leaf_devices.push_back(std::make_unique<SteadySearcher>(1e9));
  NodeAgent leaf_agent(net, leaf, std::move(leaf_devices), config);
  net.start(leaf, [&leaf_agent] { leaf_agent.serve(); });

  std::thread chaos([&net, root, leaf] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    net.set_link_loss(root, leaf, 1.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(160));
    net.set_link_loss(root, leaf, 0.0);
  });

  const keyspace::Interval space(u128(0), u128(60'000'000'000ull));
  const auto report =
      root_agent.run_root(space, keyspace::Interval(u128(0), u128(1u << 22)));
  chaos.join();
  net.join_all();

  EXPECT_EQ(report.tested, space.size());
  EXPECT_GE(report.failures_detected, 1u);
  ASSERT_EQ(report.members.size(), 2u);
  EXPECT_TRUE(report.members[1].failed);  // stays dead without rejoin
}

}  // namespace
}  // namespace gks
