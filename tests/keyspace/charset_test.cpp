#include "keyspace/charset.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace gks::keyspace {
namespace {

TEST(Charset, PredefinedSizes) {
  EXPECT_EQ(Charset::lower().size(), 26u);
  EXPECT_EQ(Charset::upper().size(), 26u);
  EXPECT_EQ(Charset::digits().size(), 10u);
  EXPECT_EQ(Charset::alpha().size(), 52u);
  EXPECT_EQ(Charset::alphanumeric().size(), 62u);
  EXPECT_EQ(Charset::printable().size(), 95u);
}

TEST(Charset, DigitOrderFollowsConstruction) {
  const Charset cs("bac");
  EXPECT_EQ(cs.at(0), 'b');
  EXPECT_EQ(cs.at(1), 'a');
  EXPECT_EQ(cs.at(2), 'c');
  EXPECT_EQ(cs.index_of('c'), 2u);
}

TEST(Charset, IndexOfIsInverseOfAt) {
  const Charset cs = Charset::alphanumeric();
  for (std::size_t i = 0; i < cs.size(); ++i) {
    EXPECT_EQ(cs.index_of(cs.at(i)), i);
  }
}

TEST(Charset, RejectsEmptyAndDuplicates) {
  EXPECT_THROW(Charset(""), InvalidArgument);
  EXPECT_THROW(Charset("abca"), InvalidArgument);
}

TEST(Charset, IndexOfUnknownCharacterThrows) {
  const Charset cs("abc");
  EXPECT_THROW(cs.index_of('z'), InvalidArgument);
  EXPECT_THROW(cs.at(3), InvalidArgument);
}

TEST(Charset, ContainsAll) {
  const Charset cs = Charset::lower();
  EXPECT_TRUE(cs.contains_all("hello"));
  EXPECT_TRUE(cs.contains_all(""));
  EXPECT_FALSE(cs.contains_all("Hello"));
  EXPECT_FALSE(cs.contains_all("h3llo"));
}

TEST(Charset, EqualityComparesContentAndOrder) {
  EXPECT_EQ(Charset("abc"), Charset("abc"));
  EXPECT_NE(Charset("abc"), Charset("acb"));
}

TEST(Charset, HandlesHighBitCharacters) {
  const Charset cs("\xe0\xe1");
  EXPECT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs.index_of('\xe1'), 1u);
}

}  // namespace
}  // namespace gks::keyspace
