#include "keyspace/codec.h"

#include <gtest/gtest.h>

#include "support/error.h"

#include <string>
#include <vector>

#include "support/rng.h"

namespace gks::keyspace {
namespace {

KeyCodec abc_codec(DigitOrder order) { return KeyCodec(Charset("abc"), order); }

TEST(Codec, SuffixFastestMatchesPaperMapping1) {
  // [0..] -> [ε, a, b, c, aa, ab, ac, ba, bb, ...]   (Equation 1)
  const KeyCodec codec = abc_codec(DigitOrder::kSuffixFastest);
  const std::vector<std::string> expected = {"",   "a",  "b",  "c",  "aa",
                                             "ab", "ac", "ba", "bb", "bc",
                                             "ca", "cb", "cc", "aaa"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(codec.decode(u128(i)), expected[i]) << "id " << i;
  }
}

TEST(Codec, PrefixFastestMatchesPaperMapping4) {
  // [0..] -> [ε, a, b, c, aa, ba, ca, ab, bb, ...]   (Equation 4)
  const KeyCodec codec = abc_codec(DigitOrder::kPrefixFastest);
  const std::vector<std::string> expected = {"",   "a",  "b",  "c",  "aa",
                                             "ba", "ca", "ab", "bb", "cb",
                                             "ac", "bc", "cc", "aaa"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(codec.decode(u128(i)), expected[i]) << "id " << i;
  }
}

class CodecOrderTest : public ::testing::TestWithParam<DigitOrder> {};

TEST_P(CodecOrderTest, EncodeIsInverseOfDecodeExhaustively) {
  const KeyCodec codec = abc_codec(GetParam());
  for (std::uint64_t id = 0; id < 1000; ++id) {
    EXPECT_EQ(codec.encode(codec.decode(u128(id))), u128(id)) << id;
  }
}

TEST_P(CodecOrderTest, DecodeIsInjectiveOnAPrefix) {
  const KeyCodec codec = abc_codec(GetParam());
  std::vector<std::string> seen;
  for (std::uint64_t id = 0; id < 500; ++id) {
    seen.push_back(codec.decode(u128(id)));
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST_P(CodecOrderTest, NextInplaceMatchesDecodeOfSuccessor) {
  const KeyCodec codec = abc_codec(GetParam());
  std::string key = codec.decode(u128(0));
  for (std::uint64_t id = 0; id < 400; ++id) {
    codec.next_inplace(key);
    EXPECT_EQ(key, codec.decode(u128(id + 1))) << "id " << id;
  }
}

TEST_P(CodecOrderTest, RoundTripOnLargeRandomIds) {
  const KeyCodec codec(Charset::alphanumeric(), GetParam());
  SplitMix64 rng(42);
  for (int i = 0; i < 200; ++i) {
    const u128 id(rng(), rng());
    EXPECT_EQ(codec.encode(codec.decode(id)), id);
  }
}

TEST_P(CodecOrderTest, NextGrowsStringAtLengthRollover) {
  const KeyCodec codec = abc_codec(GetParam());
  std::string key = "ccc";
  codec.next_inplace(key);
  EXPECT_EQ(key, "aaaa");
}

INSTANTIATE_TEST_SUITE_P(BothOrders, CodecOrderTest,
                         ::testing::Values(DigitOrder::kSuffixFastest,
                                           DigitOrder::kPrefixFastest));

TEST(Codec, DecodeIntoReusesStorage) {
  const KeyCodec codec = abc_codec(DigitOrder::kPrefixFastest);
  std::string key;
  key.reserve(16);
  codec.decode_into(u128(5), key);
  EXPECT_EQ(key, "ba");
  codec.decode_into(u128(1), key);
  EXPECT_EQ(key, "a");
}

TEST(Codec, EncodeRejectsForeignCharacters) {
  const KeyCodec codec = abc_codec(DigitOrder::kSuffixFastest);
  EXPECT_THROW(codec.encode("abz"), InvalidArgument);
}

TEST(Codec, EmptyStringIsIdZero) {
  const KeyCodec codec = abc_codec(DigitOrder::kSuffixFastest);
  EXPECT_EQ(codec.encode(""), u128(0));
  EXPECT_EQ(codec.decode(u128(0)), "");
}

TEST(Codec, SingleSymbolAlphabetIsUnary) {
  const KeyCodec codec(Charset("x"), DigitOrder::kSuffixFastest);
  EXPECT_EQ(codec.decode(u128(0)), "");
  EXPECT_EQ(codec.decode(u128(3)), "xxx");
  EXPECT_EQ(codec.encode("xxxx"), u128(4));
}

TEST(Codec, OrdersAgreeOnSingleCharacterStrings) {
  const KeyCodec a = abc_codec(DigitOrder::kSuffixFastest);
  const KeyCodec b = abc_codec(DigitOrder::kPrefixFastest);
  for (std::uint64_t id = 0; id <= 3; ++id) {
    EXPECT_EQ(a.decode(u128(id)), b.decode(u128(id)));
  }
}

TEST(Codec, PrefixFastestVariesFirstCharacterBetweenConsecutiveIds) {
  // The property the crack kernels rely on: within a length class,
  // consecutive identifiers differ in the first character.
  const KeyCodec codec(Charset::alphanumeric(), DigitOrder::kPrefixFastest);
  std::string key = codec.decode(u128(100000));
  std::string next = key;
  codec.next_inplace(next);
  ASSERT_EQ(key.size(), next.size());
  EXPECT_NE(key[0], next[0]);
  EXPECT_EQ(key.substr(1), next.substr(1));
}

}  // namespace
}  // namespace gks::keyspace
