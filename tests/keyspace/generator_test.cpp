#include "keyspace/generator.h"

#include <gtest/gtest.h>

#include "support/error.h"

#include <set>

#include "keyspace/dictionary.h"
#include "keyspace/keyspace_generator.h"

namespace gks::keyspace {
namespace {

TEST(KeyspaceGenerator, SizeMatchesSpaceFormula) {
  const KeyspaceGenerator gen(
      KeyCodec(Charset("abc"), DigitOrder::kSuffixFastest), 1, 3);
  EXPECT_EQ(gen.size(), u128(3 + 9 + 27));
}

TEST(KeyspaceGenerator, IdZeroIsFirstStringOfMinLength) {
  const KeyspaceGenerator gen(
      KeyCodec(Charset("abc"), DigitOrder::kSuffixFastest), 2, 3);
  EXPECT_EQ(gen.at(u128(0)), "aa");
}

TEST(KeyspaceGenerator, EnumeratesAllLengthsInRange) {
  const KeyspaceGenerator gen(
      KeyCodec(Charset("ab"), DigitOrder::kSuffixFastest), 1, 3);
  std::set<std::string> keys;
  for (std::uint64_t id = 0; id < gen.size().to_u64(); ++id) {
    keys.insert(gen.at(u128(id)));
  }
  EXPECT_EQ(keys.size(), 2u + 4u + 8u);
  EXPECT_TRUE(keys.count("a"));
  EXPECT_TRUE(keys.count("bbb"));
  EXPECT_FALSE(keys.count(""));
  EXPECT_FALSE(keys.count("aaaa"));
}

TEST(KeyspaceGenerator, NextMatchesGenerate) {
  const KeyspaceGenerator gen(
      KeyCodec(Charset("abc"), DigitOrder::kPrefixFastest), 1, 3);
  std::string key = gen.at(u128(0));
  for (std::uint64_t id = 0; id + 1 < gen.size().to_u64(); ++id) {
    gen.next(u128(id), key);
    EXPECT_EQ(key, gen.at(u128(id + 1))) << id;
  }
}

TEST(KeyspaceGenerator, RejectsOutOfRangeIds) {
  const KeyspaceGenerator gen(
      KeyCodec(Charset("ab"), DigitOrder::kSuffixFastest), 1, 2);
  std::string out;
  EXPECT_THROW(gen.generate(gen.size(), out), InvalidArgument);
}

TEST(KeyspaceGenerator, FixedLengthRange) {
  const KeyspaceGenerator gen(
      KeyCodec(Charset("ab"), DigitOrder::kSuffixFastest), 2, 2);
  EXPECT_EQ(gen.size(), u128(4));
  EXPECT_EQ(gen.at(u128(0)), "aa");
  EXPECT_EQ(gen.at(u128(3)), "bb");
}

TEST(DictionaryGenerator, PlainEnumeration) {
  const DictionaryGenerator dict({"password", "letmein", "dragon"});
  EXPECT_EQ(dict.size(), u128(3));
  EXPECT_EQ(dict.at(u128(0)), "password");
  EXPECT_EQ(dict.at(u128(2)), "dragon");
}

TEST(DictionaryGenerator, CommonCaseManglingTriplesTheSpace) {
  const DictionaryGenerator dict({"pass", "word"},
                                 DictionaryGenerator::Mangle::kCommonCase);
  EXPECT_EQ(dict.size(), u128(6));
  EXPECT_EQ(dict.at(u128(0)), "pass");
  EXPECT_EQ(dict.at(u128(1)), "Pass");
  EXPECT_EQ(dict.at(u128(2)), "PASS");
  EXPECT_EQ(dict.at(u128(3)), "word");
  EXPECT_EQ(dict.at(u128(4)), "Word");
}

TEST(DictionaryGenerator, RejectsEmptyDictionaryAndBadIds) {
  EXPECT_THROW(DictionaryGenerator({}), InvalidArgument);
  const DictionaryGenerator dict({"one"});
  std::string out;
  EXPECT_THROW(dict.generate(u128(1), out), InvalidArgument);
}

TEST(HybridGenerator, CartesianProductOfWordAndTail) {
  const DictionaryGenerator words({"pass", "admin"});
  const KeyspaceGenerator digits(
      KeyCodec(Charset::digits(), DigitOrder::kSuffixFastest), 2, 2);
  const HybridGenerator hybrid(words, digits);
  EXPECT_EQ(hybrid.size(), u128(200));
  EXPECT_EQ(hybrid.at(u128(0)), "pass00");
  EXPECT_EQ(hybrid.at(u128(99)), "pass99");
  EXPECT_EQ(hybrid.at(u128(100)), "admin00");
  EXPECT_EQ(hybrid.at(u128(199)), "admin99");
}

TEST(HybridGenerator, CoversWholeProductSpaceUniquely) {
  const DictionaryGenerator words({"a", "b", "c"});
  const KeyspaceGenerator tails(
      KeyCodec(Charset("xy"), DigitOrder::kSuffixFastest), 1, 2);
  const HybridGenerator hybrid(words, tails);
  std::set<std::string> seen;
  for (std::uint64_t id = 0; id < hybrid.size().to_u64(); ++id) {
    seen.insert(hybrid.at(u128(id)));
  }
  EXPECT_EQ(u128(seen.size()), hybrid.size());
}

TEST(GeneratorDefaultNext, FallsBackToGenerate) {
  const DictionaryGenerator dict({"x", "y", "z"});
  std::string key = dict.at(u128(0));
  dict.next(u128(0), key);
  EXPECT_EQ(key, "y");
}

}  // namespace
}  // namespace gks::keyspace
