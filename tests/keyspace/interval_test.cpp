#include "keyspace/interval.h"

#include <gtest/gtest.h>

#include <tuple>

#include "support/error.h"

namespace gks::keyspace {
namespace {

void expect_partition(const Interval& whole,
                      const std::vector<Interval>& parts) {
  ASSERT_FALSE(parts.empty());
  EXPECT_EQ(parts.front().begin, whole.begin);
  EXPECT_EQ(parts.back().end, whole.end);
  for (std::size_t i = 1; i < parts.size(); ++i) {
    EXPECT_EQ(parts[i].begin, parts[i - 1].end) << "gap at part " << i;
  }
  u128 total(0);
  for (const auto& p : parts) total += p.size();
  EXPECT_EQ(total, whole.size());
}

TEST(Interval, BasicAccessors) {
  const Interval i(u128(10), u128(25));
  EXPECT_EQ(i.size(), u128(15));
  EXPECT_FALSE(i.empty());
  EXPECT_TRUE(i.contains(u128(10)));
  EXPECT_TRUE(i.contains(u128(24)));
  EXPECT_FALSE(i.contains(u128(25)));
  EXPECT_TRUE(Interval(u128(5), u128(5)).empty());
}

class SplitEvenTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(SplitEvenTest, PartitionsExactly) {
  const auto [size, parts] = GetParam();
  const Interval whole(u128(1000), u128(1000) + u128(size));
  const auto out = split_even(whole, parts);
  ASSERT_EQ(out.size(), parts);
  expect_partition(whole, out);
  // Sizes differ by at most one.
  u128 mn = u128::max(), mx(0);
  for (const auto& p : out) {
    mn = std::min(mn, p.size());
    mx = std::max(mx, p.size());
  }
  EXPECT_LE(mx - mn, u128(1));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SplitEvenTest,
    ::testing::Combine(::testing::Values(0ull, 1ull, 7ull, 100ull, 1000001ull),
                       ::testing::Values(1u, 2u, 3u, 7u, 64u)));

TEST(SplitEven, RejectsZeroParts) {
  EXPECT_THROW(split_even(Interval(u128(0), u128(10)), 0), InvalidArgument);
}

TEST(SplitEven, MorePartsThanIdsYieldsSizeOneThenEmptySlices) {
  const Interval whole(u128(40), u128(43));  // 3 ids
  const auto out = split_even(whole, 8);
  ASSERT_EQ(out.size(), 8u);
  expect_partition(whole, out);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(out[i].size(), u128(1));
  for (std::size_t i = 3; i < 8; ++i) EXPECT_TRUE(out[i].empty());
}

TEST(SplitEven, EmptyIntervalYieldsAllEmptySlices) {
  const auto out = split_even(Interval(u128(7), u128(7)), 4);
  ASSERT_EQ(out.size(), 4u);
  for (const auto& p : out) {
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.begin, u128(7));
  }
}

TEST(SplitEven, InvertedIntervalIsTreatedAsEmpty) {
  // begin > end: size() would wrap around 2^128 — the split must not
  // rely on it and instead hand back empty slices at `begin`.
  const auto out = split_even(Interval(u128(9), u128(3)), 3);
  ASSERT_EQ(out.size(), 3u);
  for (const auto& p : out) {
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.begin, u128(9));
  }
}

TEST(SplitWeighted, EmptyAndInvertedIntervalsYieldEmptyParts) {
  for (const Interval whole : {Interval(u128(5), u128(5)),
                               Interval(u128(8), u128(2))}) {
    const auto out = split_weighted(whole, {1.0, 2.0});
    ASSERT_EQ(out.size(), 2u);
    for (const auto& p : out) EXPECT_TRUE(p.empty());
  }
}

TEST(SplitWeighted, ProportionalToWeights) {
  const Interval whole(u128(0), u128(1000));
  const auto out = split_weighted(whole, {1.0, 3.0, 6.0});
  expect_partition(whole, out);
  EXPECT_EQ(out[0].size(), u128(100));
  EXPECT_EQ(out[1].size(), u128(300));
  EXPECT_EQ(out[2].size(), u128(600));
}

TEST(SplitWeighted, HeaviestAbsorbsRounding) {
  const Interval whole(u128(0), u128(10));
  const auto out = split_weighted(whole, {1.0, 1.0, 1.0});
  expect_partition(whole, out);
  // 3+3 go to the non-heaviest (first is chosen as heaviest on ties);
  // whatever the tie-break, everything is covered and no part exceeds
  // the whole.
}

TEST(SplitWeighted, ZeroWeightGetsEmptyInterval) {
  const Interval whole(u128(0), u128(100));
  const auto out = split_weighted(whole, {0.0, 1.0});
  expect_partition(whole, out);
  EXPECT_TRUE(out[0].empty());
  EXPECT_EQ(out[1].size(), u128(100));
}

TEST(SplitWeighted, HugeIntervalStaysExact) {
  const Interval whole(u128(0), u128(1, 0));  // 2^64 ids
  const auto out = split_weighted(whole, {1.0, 1.0});
  expect_partition(whole, out);
}

TEST(SplitWeighted, RejectsBadWeights) {
  const Interval whole(u128(0), u128(10));
  EXPECT_THROW(split_weighted(whole, {}), InvalidArgument);
  EXPECT_THROW(split_weighted(whole, {0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(split_weighted(whole, {-1.0, 2.0}), InvalidArgument);
}

TEST(IntervalCursor, HandsOutConsecutiveChunks) {
  IntervalCursor cur(Interval(u128(0), u128(10)));
  EXPECT_EQ(cur.take(u128(4)), Interval(u128(0), u128(4)));
  EXPECT_EQ(cur.take(u128(4)), Interval(u128(4), u128(8)));
  EXPECT_EQ(cur.take(u128(4)), Interval(u128(8), u128(10)));  // tail
  EXPECT_TRUE(cur.exhausted());
  EXPECT_TRUE(cur.take(u128(4)).empty());
}

TEST(IntervalCursor, RemainingTracksProgress) {
  IntervalCursor cur(Interval(u128(100), u128(200)));
  EXPECT_EQ(cur.remaining(), u128(100));
  cur.take(u128(30));
  EXPECT_EQ(cur.remaining(), u128(70));
  cur.take(u128(1000));
  EXPECT_EQ(cur.remaining(), u128(0));
}

TEST(IntervalCursor, ZeroSizedTakeIsEmpty) {
  IntervalCursor cur(Interval(u128(0), u128(5)));
  EXPECT_TRUE(cur.take(u128(0)).empty());
  EXPECT_EQ(cur.remaining(), u128(5));
}

}  // namespace
}  // namespace gks::keyspace
