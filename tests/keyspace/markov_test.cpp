#include "keyspace/markov.h"

#include <gtest/gtest.h>

#include <set>

#include "keyspace/codec.h"
#include "keyspace/space.h"
#include "support/error.h"

namespace gks::keyspace {
namespace {

const std::vector<std::string> kCorpus = {
    "pass", "pale", "palm", "pony", "poll", "ring", "rant", "ruin",
    "sale", "salt", "sand", "song", "rope", "page", "part", "pain",
};

TEST(Markov, LearnsPerPositionFrequencyOrder) {
  const MarkovOrderedGenerator gen(Charset::lower(), 4, kCorpus);
  // Position 0: 'p' appears 8 times, 'r' 4, 's' 4 — 'p' first.
  EXPECT_EQ(gen.order_at(0).front(), 'p');
  // Position 1: 'a' dominates (pass pale palm rant sale salt sand page
  // part pain = 10 of 16).
  EXPECT_EQ(gen.order_at(1).front(), 'a');
}

TEST(Markov, FirstCandidateIsTheMostLikelyString) {
  const MarkovOrderedGenerator gen(Charset::lower(), 4, kCorpus);
  std::string first;
  gen.generate(u128(0), first);
  ASSERT_EQ(first.size(), 4u);
  for (unsigned pos = 0; pos < 4; ++pos) {
    EXPECT_EQ(first[pos], gen.order_at(pos).front()) << pos;
  }
}

TEST(Markov, EnumerationIsBijective) {
  const MarkovOrderedGenerator gen(Charset("abcd"), 3, {"abc", "bca"});
  std::set<std::string> seen;
  std::string out;
  for (u128 id(0); id < gen.size(); ++id) {
    gen.generate(id, out);
    seen.insert(out);
  }
  EXPECT_EQ(u128(seen.size()), gen.size());
  EXPECT_EQ(gen.size(), u128(64));
}

TEST(Markov, RankInvertsGenerate) {
  const MarkovOrderedGenerator gen(Charset("abcde"), 3, kCorpus);
  std::string out;
  for (std::uint64_t id = 0; id < 125; ++id) {
    gen.generate(u128(id), out);
    EXPECT_EQ(gen.rank_of(out), u128(id)) << out;
  }
}

TEST(Markov, LikelyPasswordsRankEarlierThanAlphabetical) {
  // The entire point of the ordering: a corpus-like password should be
  // reached much sooner than its alphabetical rank.
  const MarkovOrderedGenerator gen(Charset::lower(), 4, kCorpus);
  const KeyCodec alphabetical(Charset::lower(),
                              DigitOrder::kPrefixFastest);
  const std::string likely = "palt";  // corpus-shaped, not in corpus
  const u128 markov_rank = gen.rank_of(likely);
  // Alphabetical rank within the 4-char class:
  const u128 alpha_rank =
      alphabetical.encode(likely) - first_id_of_length(26, 4);
  EXPECT_LT(markov_rank, alpha_rank / u128(10));
}

TEST(Markov, UnseenCharactersKeepCharsetOrderBehindSeenOnes) {
  const MarkovOrderedGenerator gen(Charset("abcz"), 1, {"c", "c", "a"});
  const auto& order = gen.order_at(0);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 'c');
  EXPECT_EQ(order[1], 'a');
  EXPECT_EQ(order[2], 'b');  // unseen: original order
  EXPECT_EQ(order[3], 'z');
}

TEST(Markov, EmptyCorpusDegradesToPlainOrder) {
  const MarkovOrderedGenerator gen(Charset("xyz"), 2, {});
  std::string out;
  gen.generate(u128(0), out);
  EXPECT_EQ(out, "xx");
  gen.generate(u128(1), out);
  EXPECT_EQ(out, "yx");  // first position fastest
}

TEST(Markov, RejectsBadArguments) {
  const MarkovOrderedGenerator gen(Charset("ab"), 2, {});
  std::string out;
  EXPECT_THROW(gen.generate(u128(4), out), InvalidArgument);
  EXPECT_THROW(gen.rank_of("abc"), InvalidArgument);
  EXPECT_THROW(gen.rank_of("aZ"), InvalidArgument);
  EXPECT_THROW((void)gen.order_at(2), InvalidArgument);
  EXPECT_THROW(MarkovOrderedGenerator(Charset("ab"), 0, {}),
               InvalidArgument);
}

}  // namespace
}  // namespace gks::keyspace
