#include "keyspace/mask.h"

#include <gtest/gtest.h>

#include <set>

#include "support/error.h"

namespace gks::keyspace {
namespace {

TEST(Mask, SizeIsProductOfClassSizes) {
  EXPECT_EQ(MaskGenerator("?l").size(), u128(26));
  EXPECT_EQ(MaskGenerator("?l?d").size(), u128(260));
  EXPECT_EQ(MaskGenerator("?u?l?l?l?d?d").size(),
            u128(26ull * 26 * 26 * 26 * 10 * 10));
  EXPECT_EQ(MaskGenerator("abc").size(), u128(1));  // all literals
}

TEST(Mask, FirstPositionVariesFastest) {
  const MaskGenerator mask("?l?d");
  EXPECT_EQ(mask.at(u128(0)), "a0");
  EXPECT_EQ(mask.at(u128(1)), "b0");
  EXPECT_EQ(mask.at(u128(25)), "z0");
  EXPECT_EQ(mask.at(u128(26)), "a1");
  EXPECT_EQ(mask.at(u128(259)), "z9");
}

TEST(Mask, LiteralsAreFixedPositions) {
  const MaskGenerator mask("pass?d?d");
  EXPECT_EQ(mask.size(), u128(100));
  EXPECT_EQ(mask.at(u128(0)), "pass00");
  EXPECT_EQ(mask.at(u128(99)), "pass99");
}

TEST(Mask, QuestionMarkEscape) {
  const MaskGenerator mask("a???d");
  EXPECT_EQ(mask.size(), u128(10));
  EXPECT_EQ(mask.at(u128(3)), "a?3");
}

TEST(Mask, SymbolClassExcludesAlphanumerics) {
  const MaskGenerator mask("?s");
  std::string out;
  for (u128 id(0); id < mask.size(); ++id) {
    mask.generate(id, out);
    const char c = out[0];
    EXPECT_FALSE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 (c >= '0' && c <= '9'))
        << c;
  }
}

TEST(Mask, EnumerationIsBijective) {
  const MaskGenerator mask("?d?l");
  std::set<std::string> seen;
  std::string out;
  for (u128 id(0); id < mask.size(); ++id) {
    mask.generate(id, out);
    seen.insert(out);
  }
  EXPECT_EQ(u128(seen.size()), mask.size());
}

TEST(Mask, NextMatchesGenerate) {
  const MaskGenerator mask("?d?l");
  std::string key = mask.at(u128(0));
  for (std::uint64_t id = 0; id + 1 < mask.size().to_u64(); ++id) {
    mask.next(u128(id), key);
    EXPECT_EQ(key, mask.at(u128(id + 1))) << id;
  }
}

TEST(Mask, NextWrapsAroundAtTheEnd) {
  const MaskGenerator mask("?d");
  std::string key = "9";
  mask.next(u128(9), key);
  EXPECT_EQ(key, "0");
}

TEST(Mask, RejectsMalformedMasks) {
  EXPECT_THROW(MaskGenerator(""), InvalidArgument);
  EXPECT_THROW(MaskGenerator("?"), InvalidArgument);
  EXPECT_THROW(MaskGenerator("?x"), InvalidArgument);
}

TEST(Mask, GenerateRejectsOutOfRangeIds) {
  const MaskGenerator mask("?d");
  std::string out;
  EXPECT_THROW(mask.generate(u128(10), out), InvalidArgument);
}

TEST(Mask, AnyClassCoversPrintableAscii) {
  EXPECT_EQ(MaskGenerator("?a").size(), u128(95));
}

}  // namespace
}  // namespace gks::keyspace
