#include "keyspace/rules.h"

#include <gtest/gtest.h>

#include <set>

#include "support/error.h"

namespace gks::keyspace {
namespace {

std::string apply(const char* spec, const char* word) {
  return Rule(spec).apply(word);
}

TEST(Rule, SingleOperations) {
  EXPECT_EQ(apply(":", "PassWord"), "PassWord");
  EXPECT_EQ(apply("l", "PassWord"), "password");
  EXPECT_EQ(apply("u", "PassWord"), "PASSWORD");
  EXPECT_EQ(apply("c", "passWORD"), "Password");
  EXPECT_EQ(apply("C", "password"), "pASSWORD");
  EXPECT_EQ(apply("r", "abc"), "cba");
  EXPECT_EQ(apply("d", "ab"), "abab");
  EXPECT_EQ(apply("t", "aBc"), "AbC");
  EXPECT_EQ(apply("$1", "pass"), "pass1");
  EXPECT_EQ(apply("^!", "pass"), "!pass");
  EXPECT_EQ(apply("sa@", "banana"), "b@n@n@");
  EXPECT_EQ(apply("[", "pass"), "ass");
  EXPECT_EQ(apply("]", "pass"), "pas");
}

TEST(Rule, OperationsComposeLeftToRight) {
  EXPECT_EQ(apply("c$1$2", "dragon"), "Dragon12");
  EXPECT_EQ(apply("sa@se3", "release"), "r3l3@s3");
  EXPECT_EQ(apply("r$x", "ab"), "bax");
  EXPECT_EQ(apply("$xr", "ab"), "xba");  // order matters
}

TEST(Rule, EdgeCasesOnEmptyAndShortWords) {
  EXPECT_EQ(apply("c", ""), "");
  EXPECT_EQ(apply("[", ""), "");
  EXPECT_EQ(apply("]", ""), "");
  EXPECT_EQ(apply("d", ""), "");
  EXPECT_EQ(apply("[", "a"), "");
}

TEST(Rule, RejectsMalformedSpecs) {
  EXPECT_THROW(Rule(""), InvalidArgument);
  EXPECT_THROW(Rule("q"), InvalidArgument);
  EXPECT_THROW(Rule("$"), InvalidArgument);   // missing argument
  EXPECT_THROW(Rule("sa"), InvalidArgument);  // substitution needs two
}

TEST(RuleSet, ExpandProducesOneVariantPerRule) {
  const RuleSet rules({":", "u", "c$1"});
  const auto variants = rules.expand("dog");
  ASSERT_EQ(variants.size(), 3u);
  EXPECT_EQ(variants[0], "dog");
  EXPECT_EQ(variants[1], "DOG");
  EXPECT_EQ(variants[2], "Dog1");
}

TEST(RuleSet, CommonSetCoversTheClassicPatterns) {
  const RuleSet rules = RuleSet::common();
  const auto variants = rules.expand("password");
  const std::set<std::string> set(variants.begin(), variants.end());
  EXPECT_TRUE(set.count("password"));
  EXPECT_TRUE(set.count("Password"));
  EXPECT_TRUE(set.count("PASSWORD"));
  EXPECT_TRUE(set.count("Password123"));
  EXPECT_TRUE(set.count("password1"));
  EXPECT_TRUE(set.count("p@ssw0rd"));
  EXPECT_TRUE(set.count("drowssap"));
}

TEST(RuleSet, RejectsEmptyAndBadIndices) {
  EXPECT_THROW(RuleSet({}), InvalidArgument);
  const RuleSet rules({":"});
  EXPECT_THROW((void)rules.at(1), InvalidArgument);
}

TEST(RuledDictionary, EnumeratesWordByWordRuleFastest) {
  const std::vector<std::string> words = {"dog", "cat"};
  const RuleSet rules({":", "u"});
  const RuledDictionaryGenerator gen(words, rules);
  EXPECT_EQ(gen.size(), u128(4));
  EXPECT_EQ(gen.at(u128(0)), "dog");
  EXPECT_EQ(gen.at(u128(1)), "DOG");
  EXPECT_EQ(gen.at(u128(2)), "cat");
  EXPECT_EQ(gen.at(u128(3)), "CAT");
}

TEST(RuledDictionary, OutOfRangeAndEmptyRejected) {
  const std::vector<std::string> words = {"a"};
  const RuleSet rules({":"});
  const RuledDictionaryGenerator gen(words, rules);
  std::string out;
  EXPECT_THROW(gen.generate(u128(1), out), InvalidArgument);
  const std::vector<std::string> empty;
  EXPECT_THROW(RuledDictionaryGenerator(empty, rules), InvalidArgument);
}

}  // namespace
}  // namespace gks::keyspace
