#include "keyspace/space.h"

#include <gtest/gtest.h>

#include "keyspace/codec.h"
#include "support/error.h"

namespace gks::keyspace {
namespace {

TEST(Space, KeysOfLengthIsPower) {
  EXPECT_EQ(keys_of_length(3, 0), u128(1));
  EXPECT_EQ(keys_of_length(3, 2), u128(9));
  EXPECT_EQ(keys_of_length(62, 8).to_string(), "218340105584896");
}

TEST(Space, KeysUpToSumsAllLengths) {
  // N=3: 1 + 3 + 9 + 27 = 40
  EXPECT_EQ(keys_up_to(3, 3), u128(40));
  EXPECT_EQ(keys_up_to(3, 0), u128(1));
}

TEST(Space, Equation2ClosedFormHolds) {
  // S_{K0}^{K} = (N^{K+1} - N^{K0}) / (N - 1) — cross-check against the
  // direct sum for a grid of parameters.
  for (std::size_t n : {2u, 3u, 10u, 62u}) {
    for (unsigned k0 : {0u, 1u, 3u}) {
      for (unsigned k : {3u, 5u, 8u}) {
        if (k0 > k) continue;
        const u128 base(static_cast<std::uint64_t>(n));
        const u128 closed = (u128::checked_pow(base, k + 1) -
                             u128::checked_pow(base, k0)) /
                            u128(static_cast<std::uint64_t>(n - 1));
        EXPECT_EQ(space_size(n, k0, k), closed)
            << "n=" << n << " k0=" << k0 << " k=" << k;
      }
    }
  }
}

TEST(Space, Equation3UnaryAlphabet) {
  // N = 1: S = K - K0 + 1 (Equation 3).
  EXPECT_EQ(space_size(1, 2, 7), u128(6));
  EXPECT_EQ(space_size(1, 0, 0), u128(1));
  EXPECT_EQ(keys_up_to(1, 9), u128(10));
}

TEST(Space, PaperSectionOneExamples) {
  // "the number of strings containing at most 8 alphabetic characters
  //  (both lower and upper case) is ≈ 54,508 billions"
  const double alpha8 = space_size(52, 1, 8).to_double();
  EXPECT_NEAR(alpha8 / 1e9, 54508.0, 1.0);
  // "with 10 characters it becomes ≈ 147,389,520 billions"
  const double alpha10 = space_size(52, 1, 10).to_double();
  EXPECT_NEAR(alpha10 / 1e9, 147389520.0, 1000.0);
}

TEST(Space, EvaluationKeyspaceSize) {
  // The paper's experiments search "up to 8 alphanumeric characters,
  // both lower and upper cases" — 62 symbols, lengths 1..8.
  EXPECT_EQ(space_size(62, 1, 8).to_string(), "221919451578090");
}

TEST(Space, SizeMatchesCodecEnumerationExhaustively) {
  const KeyCodec codec(Charset("abcd"), DigitOrder::kSuffixFastest);
  // Count ids whose decoded length is in [2, 3]: must equal S_2^3.
  std::uint64_t count = 0;
  for (std::uint64_t id = 0; id < 200; ++id) {
    const auto len = codec.decode(u128(id)).size();
    if (len >= 2 && len <= 3) ++count;
  }
  EXPECT_EQ(u128(count), space_size(4, 2, 3));
}

TEST(Space, FirstIdOfLengthAlignsWithCodec) {
  const KeyCodec codec(Charset("abc"), DigitOrder::kSuffixFastest);
  for (unsigned len = 0; len <= 4; ++len) {
    const u128 first = first_id_of_length(3, len);
    EXPECT_EQ(codec.decode(first).size(), len) << "len " << len;
    if (first > u128(0)) {
      EXPECT_EQ(codec.decode(first - u128(1)).size(), len - 1);
    }
  }
}

TEST(Space, LengthOfIdInvertsFirstIdOfLength) {
  for (unsigned len = 0; len <= 6; ++len) {
    const u128 first = first_id_of_length(5, len);
    EXPECT_EQ(length_of_id(5, first), len);
    if (len > 0) {
      EXPECT_EQ(length_of_id(5, first - u128(1)), len - 1);
    }
  }
}

TEST(Space, OverflowIsDetected) {
  EXPECT_THROW(keys_of_length(62, 30), InternalError);
  EXPECT_THROW(keys_up_to(62, 30), Error);
}

TEST(Space, RejectsBadArguments) {
  EXPECT_THROW(keys_of_length(0, 3), InvalidArgument);
  EXPECT_THROW(space_size(3, 5, 2), InvalidArgument);
}

}  // namespace
}  // namespace gks::keyspace
