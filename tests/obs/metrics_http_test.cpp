#include "obs/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "support/error.h"

namespace gks::obs {
namespace {

/// Blocking one-shot HTTP exchange against "127.0.0.1:<port>".
std::string http_request(const std::string& address,
                         const std::string& request) {
  const auto colon = address.rfind(':');
  const std::string host = address.substr(0, colon);
  const int port = std::stoi(address.substr(colon + 1));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << "connect to " << address;
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsHttpServer, ServesRenderedBodyOnMetricsPath) {
  MetricsHttpServer server([] { return std::string("hello 42\n"); });
  server.start("127.0.0.1:0");
  ASSERT_FALSE(server.address().empty());

  const std::string response = http_request(
      server.address(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  // Prometheus scrapers key off the 0.0.4 text-exposition type.
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\nhello 42\n"), std::string::npos);

  // Root path aliases /metrics; repeated scrapes keep working on the
  // same server (one-connection-per-request).
  const std::string root =
      http_request(server.address(), "GET / HTTP/1.0\r\n\r\n");
  EXPECT_NE(root.find("200 OK"), std::string::npos);
  server.stop();
}

TEST(MetricsHttpServer, RejectsUnknownPathAndMethod) {
  MetricsHttpServer server([] { return std::string("x\n"); });
  server.start("127.0.0.1:0");
  EXPECT_NE(
      http_request(server.address(), "GET /nope HTTP/1.0\r\n\r\n")
          .find("404 Not Found"),
      std::string::npos);
  EXPECT_NE(
      http_request(server.address(), "POST /metrics HTTP/1.0\r\n\r\n")
          .find("405 Method Not Allowed"),
      std::string::npos);
  server.stop();
}

TEST(MetricsHttpServer, RendererExceptionBecomes500) {
  MetricsHttpServer server(
      []() -> std::string { throw Error("registry on fire"); });
  server.start("127.0.0.1:0");
  const std::string response =
      http_request(server.address(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("500 Internal Server Error"), std::string::npos);
  EXPECT_NE(response.find("registry on fire"), std::string::npos);
  server.stop();
}

TEST(MetricsHttpServer, StopIsIdempotentAndRestartableInstanceFresh) {
  {
    MetricsHttpServer server([] { return std::string(); });
    server.start("127.0.0.1:0");
    server.stop();
    server.stop();  // second stop is a no-op
  }                 // destructor after explicit stop is also fine
  MetricsHttpServer again([] { return std::string("fresh\n"); });
  again.start("127.0.0.1:0");
  EXPECT_NE(http_request(again.address(), "GET /metrics HTTP/1.0\r\n\r\n")
                .find("fresh"),
            std::string::npos);
}

TEST(MetricsHttpServer, BadListenAddressThrows) {
  MetricsHttpServer server([] { return std::string(); });
  EXPECT_THROW(server.start("definitely.not.resolvable.invalid:1"),
               Error);
  // A failed start leaves the server usable.
  server.start("127.0.0.1:0");
  EXPECT_FALSE(server.address().empty());
}

}  // namespace
}  // namespace gks::obs
