#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "support/error.h"
#include "support/json.h"

namespace gks::obs {
namespace {

TEST(Counter, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ConcurrentAddsLoseNothing) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Histogram, BucketOfIsLog2Microseconds) {
  // Bucket 0: sub-microsecond. Bucket i (i >= 1): [2^(i-1), 2^i) us.
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(0.5e-6), 0u);
  EXPECT_EQ(Histogram::bucket_of(1e-6), 1u);
  EXPECT_EQ(Histogram::bucket_of(1.5e-6), 1u);
  EXPECT_EQ(Histogram::bucket_of(2e-6), 2u);
  EXPECT_EQ(Histogram::bucket_of(3e-6), 2u);
  EXPECT_EQ(Histogram::bucket_of(1.0), 20u);  // 2^20 us ~ 1.05 s
  // Absurd durations clamp into the top bucket instead of indexing
  // out of range.
  EXPECT_EQ(Histogram::bucket_of(1e18), HistogramSnapshot::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_of(-3.0), 0u);
}

TEST(Histogram, ConcurrentObservationsLoseNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      // Each thread hammers a different duration scale so several
      // buckets race simultaneously.
      const double base = 1e-6 * (1 << t);
      for (int i = 0; i < kPerThread; ++i) h.observe(base);
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_GT(s.sum, 0.0);
}

TEST(Histogram, SnapshotDuringUpdateIsInternallyConsistent) {
  // count() derives from the buckets, so a snapshot races only on how
  // many observations it caught, never on consistency between a stored
  // count and the buckets. Snapshot repeatedly while 8 writers run and
  // require monotonically plausible counts throughout.
  Histogram h;
  std::atomic<bool> stop{false};
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(1e-4);
    });
  }
  std::uint64_t last = 0;
  while (!stop.load()) {
    const HistogramSnapshot s = h.snapshot();
    const std::uint64_t n = s.count();
    EXPECT_GE(n, last);
    EXPECT_LE(n, static_cast<std::uint64_t>(kThreads) * kPerThread);
    last = n;
    if (n == static_cast<std::uint64_t>(kThreads) * kPerThread) break;
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(h.snapshot().count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  Histogram a, b, c;
  for (int i = 0; i < 10; ++i) a.observe(1e-6);
  for (int i = 0; i < 20; ++i) b.observe(1e-3);
  for (int i = 0; i < 30; ++i) c.observe(1.0);

  // (a+b)+c
  HistogramSnapshot left = a.snapshot();
  left.merge(b.snapshot());
  left.merge(c.snapshot());
  // a+(b+c)
  HistogramSnapshot bc = b.snapshot();
  bc.merge(c.snapshot());
  HistogramSnapshot right = a.snapshot();
  right.merge(bc);
  // c+(b+a) — order flipped too
  HistogramSnapshot ba = b.snapshot();
  ba.merge(a.snapshot());
  HistogramSnapshot flipped = c.snapshot();
  flipped.merge(ba);

  EXPECT_EQ(left.buckets, right.buckets);
  EXPECT_EQ(left.buckets, flipped.buckets);
  EXPECT_DOUBLE_EQ(left.sum, right.sum);
  EXPECT_DOUBLE_EQ(left.sum, flipped.sum);
  EXPECT_EQ(left.count(), 60u);
}

TEST(Histogram, QuantilesBracketTheData) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.observe(1e-3);   // ~bucket 10
  for (int i = 0; i < 100; ++i) h.observe(64e-3);  // ~bucket 16
  const HistogramSnapshot s = h.snapshot();
  // p25 lives in the 1 ms cohort, p75 in the 64 ms cohort; log2
  // buckets are coarse, so assert the half-order-of-magnitude bracket,
  // not exact values.
  EXPECT_GT(s.quantile(0.25), 0.25e-3);
  EXPECT_LE(s.quantile(0.25), 2e-3);
  EXPECT_GT(s.quantile(0.75), 16e-3);
  EXPECT_LE(s.quantile(0.75), 128e-3);
  EXPECT_GE(s.quantile(0.75), s.quantile(0.25));
  EXPECT_NEAR(s.mean(), (0.1 + 6.4) / 200, 1e-9);
  // Degenerate inputs.
  EXPECT_EQ(HistogramSnapshot{}.quantile(0.5), 0.0);
  EXPECT_EQ(HistogramSnapshot{}.mean(), 0.0);
}

TEST(Registry, CreatesOnceAndReturnsStableRefs) {
  Registry reg;
  Counter& a = reg.counter("gks_test_total");
  Counter& b = reg.counter("gks_test_total");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(reg.snapshot().counter_or("gks_test_total"), 7u);
}

TEST(Registry, KindMismatchThrows) {
  Registry reg;
  reg.counter("gks_thing");
  EXPECT_THROW(reg.gauge("gks_thing"), InvalidArgument);
  EXPECT_THROW(reg.histogram("gks_thing"), InvalidArgument);
}

TEST(Registry, RejectsInvalidNames) {
  Registry reg;
  EXPECT_THROW(reg.counter(""), InvalidArgument);
  EXPECT_THROW(reg.counter("has space"), InvalidArgument);
  EXPECT_THROW(reg.counter("7starts_with_digit"), InvalidArgument);
  EXPECT_NO_THROW(reg.counter("_ok_name_2"));
}

TEST(Registry, ConcurrentCreateAndUpdate) {
  Registry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // All threads race the same names: creation must be exactly-once
      // and updates must all land.
      for (int i = 0; i < 10000; ++i) {
        reg.counter("gks_shared_total").add(1);
        reg.histogram("gks_shared_seconds").observe(1e-5);
      }
    });
  }
  for (auto& t : threads) t.join();
  const RegistrySnapshot s = reg.snapshot();
  EXPECT_EQ(s.counter_or("gks_shared_total"), 80000u);
  ASSERT_NE(s.histogram("gks_shared_seconds"), nullptr);
  EXPECT_EQ(s.histogram("gks_shared_seconds")->count(), 80000u);
}

TEST(Snapshot, MergeAddsCountersAndGauges) {
  Registry a, b;
  a.counter("gks_n_total").add(2);
  b.counter("gks_n_total").add(3);
  b.counter("gks_only_b_total").add(9);
  a.gauge("gks_rate").set(10);
  b.gauge("gks_rate").set(5);
  RegistrySnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.counter_or("gks_n_total"), 5u);
  EXPECT_EQ(merged.counter_or("gks_only_b_total"), 9u);
  EXPECT_DOUBLE_EQ(merged.gauge_or("gks_rate"), 15.0);
}

TEST(Snapshot, DiffSubtractsAndClamps) {
  Registry reg;
  Counter& c = reg.counter("gks_events_total");
  Histogram& h = reg.histogram("gks_lat_seconds");
  c.add(5);
  h.observe(1e-3);
  const RegistrySnapshot before = reg.snapshot();
  c.add(10);
  h.observe(1e-3);
  h.observe(2.0);
  const RegistrySnapshot after = reg.snapshot();
  const RegistrySnapshot d = diff(after, before);
  EXPECT_EQ(d.counter_or("gks_events_total"), 10u);
  ASSERT_NE(d.histogram("gks_lat_seconds"), nullptr);
  EXPECT_EQ(d.histogram("gks_lat_seconds")->count(), 2u);
  // Reversed diff clamps to zero rather than wrapping.
  const RegistrySnapshot r = diff(before, after);
  EXPECT_EQ(r.counter_or("gks_events_total"), 0u);
  EXPECT_EQ(r.histogram("gks_lat_seconds")->count(), 0u);
}

TEST(Snapshot, JsonRoundTripIsExact) {
  Registry reg;
  reg.counter("gks_big_total").add(0xFFFFFFFFFFFFFFFFull);  // > 2^53
  reg.gauge("gks_rate").set(12345.675);
  Histogram& h = reg.histogram("gks_lat_seconds");
  h.observe(3e-6);
  h.observe(0.5);
  const RegistrySnapshot orig = reg.snapshot();

  const std::string doc = snapshot_to_json_string(orig);
  const RegistrySnapshot back = snapshot_from_json(json::parse(doc));

  // The > 2^53 counter survives because values travel as decimal
  // strings, never JSON numbers.
  EXPECT_EQ(back.counter_or("gks_big_total"), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_DOUBLE_EQ(back.gauge_or("gks_rate"), 12345.675);
  ASSERT_NE(back.histogram("gks_lat_seconds"), nullptr);
  EXPECT_EQ(back.histogram("gks_lat_seconds")->buckets,
            orig.histogram("gks_lat_seconds")->buckets);
  EXPECT_NEAR(back.histogram("gks_lat_seconds")->sum, 0.500003, 1e-9);
}

TEST(Snapshot, WireAccessorsToleratWrongKinds) {
  Registry reg;
  reg.gauge("gks_g").set(3);
  EXPECT_EQ(reg.snapshot().counter_or("gks_g", 42), 42u);
  EXPECT_EQ(reg.snapshot().counter_or("gks_missing"), 0u);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauge_or("gks_missing", -1), -1.0);
  EXPECT_EQ(reg.snapshot().histogram("gks_g"), nullptr);
}

TEST(Prometheus, RendersFamiliesBucketsAndLabels) {
  Registry coord, worker;
  coord.counter("gks_leases_total").add(4);
  worker.counter("gks_leases_total").add(6);
  worker.gauge("gks_keys_per_s").set(1.5e6);
  Histogram& h = worker.histogram("gks_rtt_seconds");
  h.observe(3e-6);  // bucket 2, upper 4e-6
  h.observe(3e-6);

  const std::string text = prometheus_exposition({
      {{{"node", "coordinator"}}, coord.snapshot()},
      {{{"worker", "w0"}}, worker.snapshot()},
  });

  // One TYPE line per family even though two label sets carry it.
  EXPECT_NE(text.find("# TYPE gks_leases_total counter"),
            std::string::npos);
  EXPECT_EQ(text.find("# TYPE gks_leases_total counter",
                      text.find("# TYPE gks_leases_total counter") + 1),
            std::string::npos);
  EXPECT_NE(text.find("gks_leases_total{node=\"coordinator\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("gks_leases_total{worker=\"w0\"} 6"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE gks_keys_per_s gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gks_rtt_seconds histogram"),
            std::string::npos);
  // Cumulative buckets with le in seconds, then +Inf, _sum, _count.
  EXPECT_NE(text.find("gks_rtt_seconds_bucket{worker=\"w0\",le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("gks_rtt_seconds_count{worker=\"w0\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("gks_rtt_seconds_sum{worker=\"w0\"}"),
            std::string::npos);
  // The exposition ends with a newline (scrapers require it).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(Prometheus, EscapesLabelValues) {
  Registry reg;
  reg.counter("gks_x_total").add(1);
  const std::string text = prometheus_exposition(
      {{{{"worker", "we\"ird\\name\n"}}, reg.snapshot()}});
  EXPECT_NE(text.find("worker=\"we\\\"ird\\\\name\\n\""),
            std::string::npos);
}

TEST(Enabled, TogglesGlobally) {
  EXPECT_TRUE(enabled());  // default on
  set_enabled(false);
  EXPECT_FALSE(enabled());
  set_enabled(true);
  EXPECT_TRUE(enabled());
}

}  // namespace
}  // namespace gks::obs
