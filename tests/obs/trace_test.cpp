#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "support/json.h"

namespace gks::obs {
namespace {

TEST(TraceRing, KeepsMostRecentOldestFirst) {
  TraceRing ring(4);
  for (int i = 0; i < 7; ++i) {
    ring.record({"span" + std::to_string(i), double(i), 0.1, ""});
  }
  const std::vector<SpanRecord> spans = ring.recent();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().name, "span3");
  EXPECT_EQ(spans.back().name, "span6");
  EXPECT_EQ(ring.dropped(), 3u);
}

TEST(TraceRing, UnderCapacityDropsNothing) {
  TraceRing ring(8);
  ring.record({"a", 0, 0.5, ""});
  ring.record({"b", 1, 0.5, ""});
  const auto spans = ring.recent();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "a");
  EXPECT_EQ(spans[1].name, "b");
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRing, ConcurrentRecordsAllAccounted) {
  TraceRing ring(16);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring] {
      for (int i = 0; i < kPerThread; ++i) ring.record({"s", 0, 0, ""});
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ring.recent().size(), 16u);
  EXPECT_EQ(ring.dropped(),
            static_cast<std::uint64_t>(kThreads) * kPerThread - 16);
}

TEST(Span, RecordsIntoRingAndHistogram) {
  TraceRing ring(8);
  Histogram hist;
  {
    Span span("unit.work", &hist, &ring);
    span.note("job=alpha");
    span.note("lease=42");
  }
  const auto spans = ring.recent();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "unit.work");
  EXPECT_EQ(spans[0].note, "job=alpha lease=42");
  EXPECT_GE(spans[0].dur_s, 0.0);
  EXPECT_EQ(hist.snapshot().count(), 1u);
}

TEST(Span, DisabledAtConstructionSkipsBothSinks) {
  TraceRing ring(8);
  Histogram hist;
  set_enabled(false);
  {
    Span span("ghost", &hist, &ring);
    span.note("never recorded");
  }
  set_enabled(true);
  EXPECT_TRUE(ring.recent().empty());
  EXPECT_EQ(hist.snapshot().count(), 0u);
  // Re-enabling mid-span must not resurrect a span born disabled.
  set_enabled(false);
  Span* late = new Span("late", &hist, &ring);
  set_enabled(true);
  delete late;
  EXPECT_TRUE(ring.recent().empty());
  EXPECT_EQ(hist.snapshot().count(), 0u);
}

TEST(ScopedTimer, FeedsHistogramOnly) {
  Histogram hist;
  { ScopedTimer timer(hist); }
  { ScopedTimer timer(hist); }
  EXPECT_EQ(hist.snapshot().count(), 2u);
}

TEST(Uptime, MonotonicNonNegative) {
  const double a = process_uptime_s();
  const double b = process_uptime_s();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(SpansToJson, RendersArrayOldestFirst) {
  TraceRing ring(4);
  ring.record({"first", 1.5, 0.25, "k=v"});
  ring.record({"second", 2.0, 0.125, ""});
  json::Writer w;
  spans_to_json(w, ring);
  const json::Value v = json::parse(w.str());
  ASSERT_TRUE(v.is_array());
  const auto& spans = v.as_array();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].at("name").as_string(), "first");
  EXPECT_DOUBLE_EQ(spans[0].at("start_s").as_number(), 1.5);
  EXPECT_DOUBLE_EQ(spans[0].at("dur_s").as_number(), 0.25);
  EXPECT_EQ(spans[0].at("note").as_string(), "k=v");
  EXPECT_EQ(spans[1].at("name").as_string(), "second");
}

}  // namespace
}  // namespace gks::obs
