#include "service/interval_set.h"

#include <gtest/gtest.h>

#include "keyspace/interval.h"

namespace gks::service {
namespace {

using keyspace::Interval;

TEST(IntervalSet, StartsEmpty) {
  IntervalSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.covered(), u128(0));
  EXPECT_EQ(set.piece_count(), 0u);
  EXPECT_TRUE(set.covers(Interval(u128(5), u128(5))));  // empty whole
  EXPECT_FALSE(set.covers(Interval(u128(0), u128(1))));
}

TEST(IntervalSet, AddReturnsNewlyCoveredCount) {
  IntervalSet set;
  EXPECT_EQ(set.add(Interval(u128(10), u128(20))), u128(10));
  // Fully contained: nothing new.
  EXPECT_EQ(set.add(Interval(u128(12), u128(18))), u128(0));
  // Partial overlap on the right.
  EXPECT_EQ(set.add(Interval(u128(15), u128(25))), u128(5));
  // Disjoint.
  EXPECT_EQ(set.add(Interval(u128(40), u128(50))), u128(10));
  EXPECT_EQ(set.covered(), u128(25));
  EXPECT_EQ(set.piece_count(), 2u);
}

TEST(IntervalSet, AdjacentPiecesMerge) {
  IntervalSet set;
  set.add(Interval(u128(0), u128(10)));
  set.add(Interval(u128(20), u128(30)));
  EXPECT_EQ(set.piece_count(), 2u);
  // Exactly bridges the gap and touches both neighbours.
  EXPECT_EQ(set.add(Interval(u128(10), u128(20))), u128(10));
  EXPECT_EQ(set.piece_count(), 1u);
  const auto pieces = set.pieces();
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].begin, u128(0));
  EXPECT_EQ(pieces[0].end, u128(30));
}

TEST(IntervalSet, AddSpanningManyPieces) {
  IntervalSet set;
  for (int i = 0; i < 5; ++i) {
    set.add(Interval(u128(i * 10), u128(i * 10 + 4)));
  }
  EXPECT_EQ(set.piece_count(), 5u);
  // Covers all five pieces plus the gaps between them.
  EXPECT_EQ(set.add(Interval(u128(0), u128(44))), u128(24));
  EXPECT_EQ(set.piece_count(), 1u);
  EXPECT_EQ(set.covered(), u128(44));
}

TEST(IntervalSet, EmptyAddIsNoop) {
  IntervalSet set;
  EXPECT_EQ(set.add(Interval(u128(7), u128(7))), u128(0));
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSet, CoversWhole) {
  IntervalSet set;
  const Interval whole(u128(0), u128(100));
  set.add(Interval(u128(0), u128(60)));
  EXPECT_FALSE(set.covers(whole));
  set.add(Interval(u128(60), u128(100)));
  EXPECT_TRUE(set.covers(whole));
  // A piece that starts before the whole still covers it.
  IntervalSet wide;
  wide.add(Interval(u128(0), u128(200)));
  EXPECT_TRUE(wide.covers(Interval(u128(50), u128(150))));
}

TEST(IntervalSet, GapsOfEmptySetIsWhole) {
  IntervalSet set;
  const auto gaps = set.gaps(Interval(u128(3), u128(9)));
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].begin, u128(3));
  EXPECT_EQ(gaps[0].end, u128(9));
}

TEST(IntervalSet, GapsBetweenPieces) {
  IntervalSet set;
  set.add(Interval(u128(10), u128(20)));
  set.add(Interval(u128(30), u128(40)));
  const auto gaps = set.gaps(Interval(u128(0), u128(50)));
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0].begin, u128(0));
  EXPECT_EQ(gaps[0].end, u128(10));
  EXPECT_EQ(gaps[1].begin, u128(20));
  EXPECT_EQ(gaps[1].end, u128(30));
  EXPECT_EQ(gaps[2].begin, u128(40));
  EXPECT_EQ(gaps[2].end, u128(50));
}

TEST(IntervalSet, GapsWithPieceOverhangingWhole) {
  IntervalSet set;
  set.add(Interval(u128(0), u128(15)));   // overhangs the left edge
  set.add(Interval(u128(95), u128(120)));  // overhangs the right edge
  const auto gaps = set.gaps(Interval(u128(10), u128(100)));
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].begin, u128(15));
  EXPECT_EQ(gaps[0].end, u128(95));
}

TEST(IntervalSet, GapsFullyCoveredIsEmpty) {
  IntervalSet set;
  set.add(Interval(u128(0), u128(100)));
  EXPECT_TRUE(set.gaps(Interval(u128(20), u128(80))).empty());
  EXPECT_TRUE(set.gaps(Interval(u128(5), u128(5))).empty());
}

TEST(IntervalSet, GapsPlusPiecesPartitionTheWhole) {
  IntervalSet set;
  set.add(Interval(u128(7), u128(13)));
  set.add(Interval(u128(40), u128(45)));
  set.add(Interval(u128(45), u128(60)));
  const Interval whole(u128(0), u128(64));
  u128 total(0);
  for (const auto& g : set.gaps(whole)) total += g.size();
  for (const auto& p : set.pieces()) total += p.size();
  EXPECT_EQ(total, whole.size());
}

TEST(IntervalSet, U128ScaleValues) {
  IntervalSet set;
  const u128 big = u128(1) << 100;
  EXPECT_EQ(set.add(Interval(big, big + u128(1000))), u128(1000));
  EXPECT_EQ(set.add(Interval(big + u128(500), big + u128(1500))), u128(500));
  EXPECT_EQ(set.covered(), u128(1500));
}

}  // namespace
}  // namespace gks::service
