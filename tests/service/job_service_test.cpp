#include "service/job_manager.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "hash/md5.h"
#include "hash/sha1.h"
#include "support/error.h"

namespace gks::service {
namespace {

using namespace std::chrono_literals;

JobSpec md5_job(const std::string& name, const std::string& key,
                unsigned max_length = 4) {
  JobSpec spec;
  spec.name = name;
  spec.request.algorithm = hash::Algorithm::kMd5;
  spec.request.target_hexes = {hash::Md5::digest(key).to_hex()};
  spec.request.charset = keyspace::Charset::lower();
  spec.request.min_length = 1;
  spec.request.max_length = max_length;
  return spec;
}

/// The digest of a key outside the job's charset — no candidate can
/// produce it, so the job sweeps its whole space.
JobSpec unfindable_job(const std::string& name, unsigned max_length) {
  return md5_job(name, "0000", max_length);
}

/// Polls until the job has retired some coverage (returns false on
/// timeout) — used to catch jobs "mid-run".
bool wait_for_progress(const JobManager& m, JobId id,
                       double timeout_s = 30.0) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    if (m.status(id).scanned > u128(0)) return true;
    std::this_thread::sleep_for(1ms);
  }
  return false;
}

TEST(JobService, SingleJobRunsToDone) {
  JobServiceConfig config;
  config.workers = 2;
  JobManager manager(config);
  const JobId id = manager.submit(md5_job("solo", "dog"));
  ASSERT_TRUE(manager.wait(id, 120));
  const JobSnapshot s = manager.status(id);
  EXPECT_EQ(s.state, JobState::kDone);
  EXPECT_EQ(s.name, "solo");
  EXPECT_EQ(s.targets_total, 1u);
  EXPECT_EQ(s.targets_found, 1u);
  ASSERT_EQ(s.found.size(), 1u);
  EXPECT_EQ(s.found[0].second, "dog");
  EXPECT_GT(s.scanned, u128(0));
  EXPECT_LE(s.scanned, s.space);
  EXPECT_GE(s.intervals_issued, 1u);
  EXPECT_EQ(s.intervals_issued, s.intervals_retired);
  EXPECT_GT(s.elapsed_s, 0.0);
  EXPECT_GT(s.keys_per_s, 0.0);
  EXPECT_EQ(s.eta_s, 0.0);  // terminal jobs have no ETA
}

TEST(JobService, UnfindableTargetSweepsWholeSpaceExactlyOnce) {
  JobServiceConfig config;
  config.workers = 3;
  config.max_quantum = u128(16384);  // many quanta, many workers
  JobManager manager(config);
  const JobId id = manager.submit(unfindable_job("miss", 4));
  ASSERT_TRUE(manager.wait(id, 120));
  const JobSnapshot s = manager.status(id);
  EXPECT_EQ(s.state, JobState::kDone);
  EXPECT_EQ(s.targets_found, 0u);
  // The whole space was retired, and no id twice: scanned is the sum
  // of *newly covered* ids per quantum, so any double-scan would make
  // it fall short of the space.
  EXPECT_EQ(s.scanned, s.space);
  EXPECT_DOUBLE_EQ(s.progress(), 1.0);
}

TEST(JobService, MultiTargetBatchWithDuplicates) {
  JobServiceConfig config;
  config.workers = 2;
  JobManager manager(config);
  JobSpec spec = md5_job("batch", "abc");
  spec.request.target_hexes = {
      hash::Md5::digest("abc").to_hex(), hash::Md5::digest("zzzz").to_hex(),
      hash::Md5::digest("abc").to_hex(),  // duplicate slot
      hash::Md5::digest("q").to_hex()};
  const JobId id = manager.submit(std::move(spec));
  ASSERT_TRUE(manager.wait(id, 120));
  const JobSnapshot s = manager.status(id);
  EXPECT_EQ(s.state, JobState::kDone);
  EXPECT_EQ(s.targets_total, 4u);
  EXPECT_EQ(s.targets_found, 4u);   // the duplicate resolves both slots
  EXPECT_EQ(s.found.size(), 3u);    // three unique digests recovered
}

TEST(JobService, SaltedAndSha1JobsRunThroughTheSamePath) {
  JobServiceConfig config;
  config.workers = 2;
  JobManager manager(config);

  JobSpec salted;
  salted.name = "salted";
  salted.request.algorithm = hash::Algorithm::kMd5;
  salted.request.salt = {hash::SaltPosition::kSuffix, "pepper"};
  salted.request.target_hexes = {hash::Md5::digest("catspepper").to_hex()};
  salted.request.charset = keyspace::Charset::lower();
  salted.request.min_length = 1;
  salted.request.max_length = 4;

  JobSpec sha = md5_job("sha", "fish");
  sha.request.algorithm = hash::Algorithm::kSha1;
  sha.request.target_hexes = {hash::Sha1::digest("fish").to_hex()};

  const JobId a = manager.submit(std::move(salted));
  const JobId b = manager.submit(std::move(sha));
  ASSERT_TRUE(manager.wait(a, 120));
  ASSERT_TRUE(manager.wait(b, 120));
  EXPECT_EQ(manager.status(a).found.at(0).second, "cats");
  EXPECT_EQ(manager.status(b).found.at(0).second, "fish");
}

TEST(JobService, SubmitValidation) {
  JobServiceConfig config;
  config.workers = 1;
  JobManager manager(config);
  EXPECT_THROW(manager.submit(JobSpec{}), InvalidArgument);  // empty name

  JobSpec bad_weight = md5_job("w", "dog");
  bad_weight.weight = 0;
  EXPECT_THROW(manager.submit(std::move(bad_weight)), InvalidArgument);

  const JobId id = manager.submit(unfindable_job("dup", 7));
  EXPECT_THROW(manager.submit(unfindable_job("dup", 7)), InvalidArgument);
  manager.cancel(id);
  ASSERT_TRUE(manager.wait(id, 60));
  // Terminal jobs free their name.
  const JobId again = manager.submit(md5_job("dup", "a", 2));
  EXPECT_NE(again, id);
  EXPECT_EQ(manager.find_job("dup"), again);
  ASSERT_TRUE(manager.wait(again, 60));
}

TEST(JobService, UnknownIdThrows) {
  JobServiceConfig config;
  config.workers = 1;
  JobManager manager(config);
  EXPECT_THROW(manager.status(42), InvalidArgument);
  EXPECT_THROW(manager.cancel(42), InvalidArgument);
  EXPECT_THROW(manager.pause(42), InvalidArgument);
  EXPECT_THROW(manager.resume(42), InvalidArgument);
  EXPECT_FALSE(manager.find_job("nobody").has_value());
}

TEST(JobService, InvalidRequestIsRejectedAtSubmit) {
  JobServiceConfig config;
  config.workers = 1;
  JobManager manager(config);
  JobSpec spec = md5_job("bad", "dog");
  spec.request.target_hexes = {"zz-not-hex"};
  EXPECT_THROW(manager.submit(std::move(spec)), Error);
  EXPECT_TRUE(manager.snapshot_all().empty());  // nothing half-registered
}

TEST(JobService, CancelMidRunStopsPromptly) {
  JobServiceConfig config;
  config.workers = 2;
  JobManager manager(config);
  // Length 8 over 26 chars: ~2e11 candidates, unfinishable here.
  const JobId id = manager.submit(unfindable_job("forever", 8));
  ASSERT_TRUE(wait_for_progress(manager, id));
  manager.cancel(id);
  ASSERT_TRUE(manager.wait(id, 60));
  const JobSnapshot s = manager.status(id);
  EXPECT_EQ(s.state, JobState::kCancelled);
  EXPECT_GT(s.scanned, u128(0));
  EXPECT_LT(s.scanned, s.space);
  EXPECT_LT(s.progress(), 1.0);
  // Cancel of an already-terminal job is a no-op.
  manager.cancel(id);
  EXPECT_EQ(manager.status(id).state, JobState::kCancelled);
}

TEST(JobService, PauseFreezesProgressAndResumeCompletes) {
  JobServiceConfig config;
  config.workers = 2;
  config.max_quantum = u128(65536);  // quick preemption
  JobManager manager(config);
  const JobId id = manager.submit(md5_job("pausable", "zzzzy", 5));
  ASSERT_TRUE(wait_for_progress(manager, id));
  manager.pause(id);
  // Let in-flight quanta drain back to the pending queue.
  std::this_thread::sleep_for(100ms);
  const u128 frozen = manager.status(id).scanned;
  EXPECT_EQ(manager.status(id).state, JobState::kPaused);
  std::this_thread::sleep_for(150ms);
  EXPECT_EQ(manager.status(id).scanned, frozen);  // no work while paused
  EXPECT_FALSE(manager.wait(id, 0.05));           // wait times out
  manager.resume(id);
  ASSERT_TRUE(manager.wait(id, 120));
  const JobSnapshot s = manager.status(id);
  EXPECT_EQ(s.state, JobState::kDone);
  ASSERT_EQ(s.found.size(), 1u);
  EXPECT_EQ(s.found[0].second, "zzzzy");
  // Pausing never loses work: coverage grew monotonically.
  EXPECT_GE(s.scanned, frozen);
}

TEST(JobService, DestructorLeavesUnfinishedJobsResumable) {
  namespace fs = std::filesystem;
  const std::string journal =
      (fs::temp_directory_path() / "gks_service_dtor.jsonl").string();
  fs::remove(journal);
  {
    JobServiceConfig config;
    config.workers = 2;
    config.journal_path = journal;
    JobManager manager(config);
    const JobId id = manager.submit(unfindable_job("unfinished", 8));
    ASSERT_TRUE(wait_for_progress(manager, id));
    // Manager destroyed with the job still running.
  }
  const auto recovered = JobStore::load(journal);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_FALSE(recovered[0].final_state.has_value());
  EXPECT_GT(recovered[0].journaled, u128(0));
  // Exactly-once: what was journaled is what was covered.
  EXPECT_EQ(recovered[0].journaled, recovered[0].scanned.covered());
  fs::remove(journal);
}

TEST(JobService, FairShareSmallHighPriorityBeatsLargeLowPrioritySweep) {
  JobServiceConfig config;
  config.workers = 2;
  config.max_quantum = u128(32768);  // fine-grained interleaving
  JobManager manager(config);
  // Large, low priority: 12.3M candidates ending at "zzzzy"-ish depth.
  JobSpec bulk = unfindable_job("bulk", 5);
  bulk.priority = 0;
  // Small, high priority: 475k candidates, key late in the space.
  JobSpec vip = md5_job("vip", "zzzy", 4);
  vip.priority = 3;  // 8x the share
  const JobId bulk_id = manager.submit(std::move(bulk));
  const JobId vip_id = manager.submit(std::move(vip));
  ASSERT_TRUE(manager.wait(vip_id, 120));
  // The acceptance demo: the small high-priority job completes before
  // the big low-priority sweep is half way.
  const double bulk_progress = manager.status(bulk_id).progress();
  EXPECT_LT(bulk_progress, 0.5);
  const JobSnapshot vip_snap = manager.status(vip_id);
  EXPECT_EQ(vip_snap.state, JobState::kDone);
  EXPECT_EQ(vip_snap.found.at(0).second, "zzzy");
  manager.cancel(bulk_id);
  ASSERT_TRUE(manager.wait(bulk_id, 60));
}

TEST(JobService, EightJobMixedBatchDemo) {
  namespace fs = std::filesystem;
  const std::string journal =
      (fs::temp_directory_path() / "gks_service_demo.jsonl").string();
  fs::remove(journal);

  // Phase 1: start the to-be-resumed job and kill the manager mid-run.
  {
    JobServiceConfig config;
    config.workers = 2;
    config.max_quantum = u128(16384);
    config.journal_path = journal;
    JobManager first(config);
    const JobId seed = first.submit(md5_job("seed", "zzzzy", 5));
    ASSERT_TRUE(wait_for_progress(first, seed));
  }
  {
    const auto recovered = JobStore::load(journal);
    ASSERT_EQ(recovered.size(), 1u);
    ASSERT_FALSE(recovered[0].final_state.has_value());
    ASSERT_GT(recovered[0].journaled, u128(0));
  }

  // Phase 2: resume it alongside seven fresh jobs of mixed shapes.
  JobServiceConfig config;
  config.workers = 3;
  config.max_quantum = u128(65536);
  config.journal_path = journal;
  JobManager manager(config);
  ASSERT_EQ(manager.resume_from(journal), 1u);
  const JobId seed_id = manager.find_job("seed").value();

  JobSpec vip = md5_job("vip", "dog", 4);
  vip.priority = 3;
  JobSpec bulk = md5_job("bulk", "zzzzy", 5);
  bulk.priority = 0;
  JobSpec salted;
  salted.name = "salted";
  salted.request.algorithm = hash::Algorithm::kMd5;
  salted.request.salt = {hash::SaltPosition::kSuffix, "pepper"};
  salted.request.target_hexes = {hash::Md5::digest("catspepper").to_hex()};
  salted.request.charset = keyspace::Charset::lower();
  salted.request.min_length = 1;
  salted.request.max_length = 4;
  JobSpec sha = md5_job("sha", "fish", 4);
  sha.request.algorithm = hash::Algorithm::kSha1;
  sha.request.target_hexes = {hash::Sha1::digest("fish").to_hex()};
  JobSpec multi = md5_job("multi", "abc", 4);
  multi.request.target_hexes = {hash::Md5::digest("abc").to_hex(),
                                hash::Md5::digest("zzzz").to_hex(),
                                hash::Md5::digest("abc").to_hex()};
  JobSpec tiny;
  tiny.name = "tiny";
  tiny.request.target_hexes = {hash::Md5::digest("42").to_hex()};
  tiny.request.charset = keyspace::Charset::digits();
  tiny.request.min_length = 1;
  tiny.request.max_length = 3;

  const JobId vip_id = manager.submit(std::move(vip));
  const JobId bulk_id = manager.submit(std::move(bulk));
  const JobId cancel_id = manager.submit(unfindable_job("cancelme", 8));
  const JobId salted_id = manager.submit(std::move(salted));
  const JobId sha_id = manager.submit(std::move(sha));
  const JobId multi_id = manager.submit(std::move(multi));
  const JobId tiny_id = manager.submit(std::move(tiny));

  // Cancel one job mid-run.
  ASSERT_TRUE(wait_for_progress(manager, cancel_id));
  manager.cancel(cancel_id);

  // Fairness: the small high-priority job completes before the large
  // low-priority sweep is half done.
  ASSERT_TRUE(manager.wait(vip_id, 120));
  EXPECT_LT(manager.status(bulk_id).progress(), 0.5);

  for (const JobId id :
       {seed_id, vip_id, bulk_id, cancel_id, salted_id, sha_id, multi_id,
        tiny_id}) {
    ASSERT_TRUE(manager.wait(id, 240));
  }
  manager.wait_all();

  const auto expect_done = [&](JobId id, const std::string& key) {
    const JobSnapshot s = manager.status(id);
    EXPECT_EQ(s.state, JobState::kDone) << s.name;
    ASSERT_FALSE(s.found.empty()) << s.name;
    EXPECT_EQ(s.found[0].second, key) << s.name;
    EXPECT_EQ(s.targets_found, s.targets_total) << s.name;
  };
  expect_done(seed_id, "zzzzy");
  expect_done(vip_id, "dog");
  expect_done(bulk_id, "zzzzy");
  expect_done(salted_id, "cats");
  expect_done(sha_id, "fish");
  expect_done(tiny_id, "42");
  expect_done(multi_id, "abc");
  EXPECT_EQ(manager.status(multi_id).targets_found, 3u);
  EXPECT_EQ(manager.status(cancel_id).state, JobState::kCancelled);

  // No interval scanned twice after the resume: for every job the
  // journaled id count equals the distinct covered count.
  for (const auto& rec : JobStore::load(journal)) {
    EXPECT_EQ(rec.journaled, rec.scanned.covered()) << rec.spec.name;
  }
  fs::remove(journal);
}

}  // namespace
}  // namespace gks::service
