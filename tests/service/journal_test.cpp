#include "service/journal.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "hash/md5.h"
#include "support/error.h"

namespace gks::service {
namespace {

/// A journal path under the system temp directory, deleted on teardown.
class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = (std::filesystem::temp_directory_path() /
             (std::string("gks_journal_") + info->name() + ".jsonl"))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override {
    // The journal plus anything load/rotation may have left beside it
    // (quarantine sidecar, rotated segments).
    std::filesystem::remove(path_);
    std::filesystem::remove(path_ + ".quarantine");
    for (const std::string& segment : JobStore::segment_paths(path_)) {
      std::filesystem::remove(segment);
    }
  }

  std::string path_;
};

JobSpec sample_spec(const std::string& name) {
  JobSpec spec;
  spec.name = name;
  spec.request.algorithm = hash::Algorithm::kMd5;
  spec.request.target_hexes = {hash::Md5::digest("abc").to_hex(),
                               hash::Md5::digest("zz").to_hex()};
  spec.request.charset = keyspace::Charset::lower();
  spec.request.min_length = 1;
  spec.request.max_length = 3;
  spec.request.salt = {hash::SaltPosition::kSuffix, "pepper"};
  spec.priority = 2;
  spec.weight = 1.5;
  return spec;
}

TEST_F(JournalTest, MissingFileLoadsEmpty) {
  EXPECT_TRUE(JobStore::load(path_).empty());
}

TEST_F(JournalTest, NullStoreRecordsNothing) {
  JobStore store;
  EXPECT_FALSE(store.persistent());
  store.record_job(sample_spec("a"));
  store.record_state("a", JobState::kDone);
}

TEST_F(JournalTest, SpecRoundTrips) {
  {
    JobStore store(path_);
    EXPECT_TRUE(store.persistent());
    store.record_job(sample_spec("audit"));
  }
  const auto jobs = JobStore::load(path_);
  ASSERT_EQ(jobs.size(), 1u);
  const JobSpec& spec = jobs[0].spec;
  EXPECT_EQ(spec.name, "audit");
  EXPECT_EQ(spec.request.algorithm, hash::Algorithm::kMd5);
  EXPECT_EQ(spec.request.target_hexes,
            sample_spec("audit").request.target_hexes);
  EXPECT_EQ(spec.request.charset, keyspace::Charset::lower());
  EXPECT_EQ(spec.request.min_length, 1u);
  EXPECT_EQ(spec.request.max_length, 3u);
  EXPECT_EQ(spec.request.salt.position, hash::SaltPosition::kSuffix);
  EXPECT_EQ(spec.request.salt.salt, "pepper");
  EXPECT_EQ(spec.priority, 2);
  EXPECT_EQ(spec.weight, 1.5);
  EXPECT_FALSE(jobs[0].final_state.has_value());
  EXPECT_TRUE(jobs[0].found.empty());
  EXPECT_EQ(jobs[0].journaled, u128(0));
}

TEST_F(JournalTest, ProgressRoundTrips) {
  {
    JobStore store(path_);
    store.record_job(sample_spec("a"));
    store.record_interval("a", keyspace::Interval(u128(0), u128(100)));
    store.record_interval("a", keyspace::Interval(u128(100), u128(250)));
    store.record_found("a", "00ff", "abc");
    store.record_state("a", JobState::kCancelled);
  }
  const auto jobs = JobStore::load(path_);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].journaled, u128(250));
  EXPECT_EQ(jobs[0].scanned.covered(), u128(250));
  EXPECT_EQ(jobs[0].scanned.piece_count(), 1u);  // adjacent records merge
  ASSERT_EQ(jobs[0].found.size(), 1u);
  EXPECT_EQ(jobs[0].found[0].first, "00ff");
  EXPECT_EQ(jobs[0].found[0].second, "abc");
  ASSERT_TRUE(jobs[0].final_state.has_value());
  EXPECT_EQ(*jobs[0].final_state, JobState::kCancelled);
}

TEST_F(JournalTest, MultipleJobsKeepSubmissionOrder) {
  {
    JobStore store(path_);
    store.record_job(sample_spec("first"));
    store.record_job(sample_spec("second"));
    store.record_interval("second", keyspace::Interval(u128(0), u128(7)));
  }
  const auto jobs = JobStore::load(path_);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].spec.name, "first");
  EXPECT_EQ(jobs[1].spec.name, "second");
  EXPECT_EQ(jobs[1].journaled, u128(7));
}

TEST_F(JournalTest, ReopenAppends) {
  {
    JobStore store(path_);
    store.record_job(sample_spec("a"));
    store.record_interval("a", keyspace::Interval(u128(0), u128(10)));
  }
  {
    JobStore store(path_);  // same file, append mode
    store.record_interval("a", keyspace::Interval(u128(10), u128(30)));
  }
  const auto jobs = JobStore::load(path_);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].journaled, u128(30));
}

TEST_F(JournalTest, TornFinalLineIsTolerated) {
  {
    JobStore store(path_);
    store.record_job(sample_spec("a"));
    store.record_interval("a", keyspace::Interval(u128(0), u128(64)));
  }
  {
    // Simulate a crash mid-append: a record cut off without a newline.
    std::ofstream out(path_, std::ios::app);
    out << R"({"type":"interval","job":"a","begin":"64","end)";
  }
  const auto jobs = JobStore::load(path_);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].journaled, u128(64));  // the torn record is ignored
}

TEST_F(JournalTest, CorruptMiddleRecordIsQuarantinedWithPosition) {
  {
    JobStore store(path_);
    store.record_job(sample_spec("a"));
  }
  {
    std::ofstream out(path_, std::ios::app);
    out << "!!! not json\n";
    out << R"({"type":"interval","job":"a","begin":"0","end":"5"})" << "\n";
  }
  // Replay survives: the records after the damage still apply.
  JobStore::LoadReport report;
  const auto jobs = JobStore::load(path_, &report);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].journaled, u128(5));
  // ...and the damage is quarantined with triage context: path, line
  // number, hex snippet of the offending bytes ("!!!" = 212121).
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_EQ(report.quarantine_path, path_ + ".quarantine");
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find(path_ + ":2:"), std::string::npos);
  EXPECT_NE(report.notes[0].find("212121"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(report.quarantine_path));
}

TEST_F(JournalTest, RecordForUnknownJobIsQuarantined) {
  {
    JobStore store(path_);
    store.record_interval("ghost", keyspace::Interval(u128(0), u128(5)));
    store.record_job(sample_spec("a"));
  }
  JobStore::LoadReport report;
  const auto jobs = JobStore::load(path_, &report);
  ASSERT_EQ(jobs.size(), 1u);  // the healthy job record still loads
  EXPECT_EQ(report.quarantined, 1u);
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("unknown job 'ghost'"), std::string::npos);
}

TEST_F(JournalTest, CrcMismatchIsQuarantinedNotTrusted) {
  {
    JobStore store(path_);
    store.record_job(sample_spec("a"));
    store.record_interval("a", keyspace::Interval(u128(0), u128(100)));
    store.record_interval("a", keyspace::Interval(u128(100), u128(200)));
  }
  // Flip one digit inside the *first* interval record's payload: the
  // line still parses as JSON, but the checksum no longer vouches for
  // it — bit rot must not be silently replayed as coverage.
  std::vector<std::string> lines;
  {
    std::ifstream in(path_);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 3u);
  const auto at = lines[1].find(R"("end":"100")");
  ASSERT_NE(at, std::string::npos);
  lines[1].replace(at, 11, R"("end":"900")");
  {
    std::ofstream out(path_, std::ios::trunc);
    for (const std::string& line : lines) out << line << '\n';
  }
  JobStore::LoadReport report;
  const auto jobs = JobStore::load(path_, &report);
  ASSERT_EQ(jobs.size(), 1u);
  // The tampered interval is quarantined (coverage shrinks — safe, it
  // just re-dispatches); the intact one behind it still applies.
  EXPECT_EQ(jobs[0].journaled, u128(100));
  EXPECT_EQ(report.quarantined, 1u);
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("crc mismatch"), std::string::npos);
}

TEST_F(JournalTest, LegacyJournalWithoutChecksumsStillLoads) {
  {
    // A pre-checksum journal: hand-written lines with no " #xxxxxxxx"
    // suffix must replay unchanged (backward compatibility).
    std::ofstream out(path_);
    out << R"({"type":"job","job":"a","algo":"md5","charset":"ab",)"
        << R"("min":1,"max":2,"salt_pos":"none","salt":"",)"
        << R"("priority":0,"weight":1,"targets":["00ff"]})" << "\n";
    out << R"({"type":"interval","job":"a","begin":"0","end":"6"})" << "\n";
  }
  JobStore::LoadReport report;
  const auto jobs = JobStore::load(path_, &report);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].journaled, u128(6));
  EXPECT_EQ(report.quarantined, 0u);
}

TEST_F(JournalTest, RotationSplitsSegmentsAndLoadReplaysAll) {
  {
    JobStore store(path_, {}, /*rotate_bytes=*/256);
    store.record_job(sample_spec("a"));
    for (int i = 0; i < 8; ++i) {
      store.record_interval(
          "a", keyspace::Interval(u128(i * 10), u128(i * 10 + 10)));
    }
  }
  const auto segments = JobStore::segment_paths(path_);
  ASSERT_GT(segments.size(), 1u);  // the spec alone overflows 256 bytes
  EXPECT_EQ(segments.back(), path_);
  EXPECT_NE(segments.front().find(".0001"), std::string::npos);

  const auto jobs = JobStore::load(path_);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].journaled, u128(80));
  EXPECT_EQ(jobs[0].scanned.covered(), u128(80));

  // Reopening continues the numbering instead of clobbering segments.
  const std::size_t before = segments.size();
  {
    JobStore store(path_, {}, /*rotate_bytes=*/64);
    store.record_interval("a", keyspace::Interval(u128(80), u128(90)));
    store.record_interval("a", keyspace::Interval(u128(90), u128(95)));
  }
  EXPECT_GT(JobStore::segment_paths(path_).size(), before);
  const auto again = JobStore::load(path_);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].scanned.covered(), u128(95));
}

TEST_F(JournalTest, OverlappingRecordsShowUpAsJournaledExcess) {
  {
    JobStore store(path_);
    store.record_job(sample_spec("a"));
    store.record_interval("a", keyspace::Interval(u128(0), u128(100)));
    store.record_interval("a", keyspace::Interval(u128(50), u128(150)));
  }
  const auto jobs = JobStore::load(path_);
  ASSERT_EQ(jobs.size(), 1u);
  // journaled > covered is exactly the double-scan witness the resume
  // test asserts never happens in a real run.
  EXPECT_EQ(jobs[0].journaled, u128(200));
  EXPECT_EQ(jobs[0].scanned.covered(), u128(150));
}

TEST_F(JournalTest, UnopenablePathThrows) {
  EXPECT_THROW(JobStore("/nonexistent-dir/journal.jsonl"), InvalidArgument);
}

// ---- group-commit (JournalFlushPolicy) ----------------------------

/// Lines currently visible in the file — what a crashed process would
/// leave behind, and what load() would replay.
std::size_t lines_on_disk(const std::string& path) {
  std::ifstream in(path);
  std::size_t n = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++n;
  }
  return n;
}

TEST_F(JournalTest, BatchedFlushDefersUntilTheBatchFills) {
  JobStore::FlushPolicy policy;
  policy.every_records = 4;
  policy.max_delay_s = 60.0;  // effectively never by time
  JobStore store(path_, policy);
  store.record_job(sample_spec("a"));
  store.record_interval("a", keyspace::Interval(u128(0), u128(10)));
  store.record_interval("a", keyspace::Interval(u128(10), u128(20)));
  EXPECT_EQ(lines_on_disk(path_), 0u);  // three buffered, none flushed
  store.record_interval("a", keyspace::Interval(u128(20), u128(30)));
  EXPECT_EQ(lines_on_disk(path_), 4u);  // batch full: all out at once
}

TEST_F(JournalTest, BatchedFlushHonorsMaxDelay) {
  JobStore::FlushPolicy policy;
  policy.every_records = 1000;
  policy.max_delay_s = 0.05;
  JobStore store(path_, policy);
  store.record_job(sample_spec("a"));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (lines_on_disk(path_) == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(lines_on_disk(path_), 1u);  // the flusher thread delivered
}

TEST_F(JournalTest, TerminalStateRecordForcesFlush) {
  JobStore::FlushPolicy policy;
  policy.every_records = 1000;
  policy.max_delay_s = 60.0;
  JobStore store(path_, policy);
  store.record_job(sample_spec("a"));
  store.record_interval("a", keyspace::Interval(u128(0), u128(10)));
  EXPECT_EQ(lines_on_disk(path_), 0u);
  store.record_state("a", JobState::kDone);
  // A terminal state must never sit in a buffer: everything before it
  // flushes with it, in order.
  EXPECT_EQ(lines_on_disk(path_), 3u);
}

TEST_F(JournalTest, ExplicitFlushAndCloseDeliverBufferedRecords) {
  JobStore::FlushPolicy policy;
  policy.every_records = 1000;
  policy.max_delay_s = 60.0;
  {
    JobStore store(path_, policy);
    store.record_job(sample_spec("a"));
    EXPECT_EQ(lines_on_disk(path_), 0u);
    store.flush();
    EXPECT_EQ(lines_on_disk(path_), 1u);
    store.record_interval("a", keyspace::Interval(u128(0), u128(10)));
  }  // destructor flushes the tail
  const auto jobs = JobStore::load(path_);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].journaled, u128(10));
}

TEST_F(JournalTest, BatchedJournalReplaysIdenticallyToUnbatched) {
  JobStore::FlushPolicy policy;
  policy.every_records = 8;
  policy.max_delay_s = 0.5;
  {
    JobStore store(path_, policy);
    store.record_job(sample_spec("audit"));
    store.record_interval("audit", keyspace::Interval(u128(0), u128(100)));
    store.record_found("audit", hash::Md5::digest("abc").to_hex(), "abc");
    store.record_interval("audit",
                          keyspace::Interval(u128(100), u128(250)));
  }
  const auto jobs = JobStore::load(path_);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].journaled, u128(250));
  EXPECT_EQ(jobs[0].scanned.covered(), u128(250));
  ASSERT_EQ(jobs[0].found.size(), 1u);
  EXPECT_EQ(jobs[0].found[0].second, "abc");
}

}  // namespace
}  // namespace gks::service
