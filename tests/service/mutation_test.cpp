// Live target mutation through the job service: attach/detach without
// restarting the job, journal-first durability of the mutations, and
// exactly-once found accounting across adds, removes, and a kill +
// resume in the middle of a mutated sweep.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "hash/md5.h"
#include "keyspace/codec.h"
#include "keyspace/space.h"
#include "service/job_manager.h"
#include "support/error.h"

namespace gks::service {
namespace {

using namespace std::chrono_literals;

class MutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    journal_ = (std::filesystem::temp_directory_path() /
                (std::string("gks_mutation_") + info->name() + ".jsonl"))
                   .string();
    std::filesystem::remove(journal_);
  }
  void TearDown() override { std::filesystem::remove(journal_); }

  std::string journal_;
};

void wait_for_coverage(const JobManager& m, JobId id, const u128& floor) {
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  while (m.status(id).scanned < floor) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "no progress";
    std::this_thread::sleep_for(1ms);
  }
}

/// The key at generator-relative id `rel_id` of the spec's key space.
std::string key_at(const JobSpec& spec, const u128& rel_id) {
  const keyspace::KeyCodec codec(spec.request.charset,
                                 keyspace::DigitOrder::kPrefixFastest);
  const u128 offset = keyspace::first_id_of_length(
      spec.request.charset.size(), spec.request.min_length);
  return codec.decode(rel_id + offset);
}

/// A 1..5 lowercase sweep (12.3M ids) whose single target sits at the
/// very last id — the sweep must cover everything, leaving plenty of
/// mid-sweep time to mutate the target set.
JobSpec full_sweep_spec(const std::string& name, u128* space_out) {
  JobSpec spec;
  spec.name = name;
  spec.request.charset = keyspace::Charset::lower();
  spec.request.min_length = 1;
  spec.request.max_length = 5;
  const u128 space = keyspace::space_size(26, 1, 5);
  spec.request.target_hexes = {
      hash::Md5::digest(key_at(spec, space - u128(1))).to_hex()};
  if (space_out != nullptr) *space_out = space;
  return spec;
}

TEST_F(MutationTest, AddMidSweepIsFoundWithExactlyOnceJournal) {
  u128 space(0);
  const JobSpec spec = full_sweep_spec("grow", &space);

  JobServiceConfig config;
  config.workers = 2;
  config.max_quantum = u128(1) << 18;
  config.journal_path = journal_;
  JobManager manager(config);
  const JobId id = manager.submit(spec);
  wait_for_coverage(manager, id, u128(50000));

  // Attach a target planted in the second half — far past the current
  // coverage frontier, so its covering interval is scanned post-add.
  const std::string late_key = key_at(spec, space / u128(2) + u128(12345));
  const std::string late_hex = hash::Md5::digest(late_key).to_hex();
  const core::TargetAddOutcome out = manager.add_targets(id, {late_hex});
  EXPECT_EQ(out.attached, 1u);
  EXPECT_EQ(out.already_found, 0u);

  ASSERT_TRUE(manager.wait(id, 240));
  const JobSnapshot snap = manager.status(id);
  EXPECT_EQ(snap.state, JobState::kDone);
  EXPECT_EQ(snap.targets_total, 2u);
  EXPECT_EQ(snap.targets_found, 2u);
  ASSERT_EQ(snap.found.size(), 2u);
  EXPECT_TRUE(std::any_of(snap.found.begin(), snap.found.end(),
                          [&](const auto& f) { return f.second == late_key; }));

  const auto recovered = JobStore::load(journal_);
  ASSERT_EQ(recovered.size(), 1u);
  const auto& rec = recovered[0];
  // Exactly-once coverage: summed interval sizes equal the union, and
  // exactly one found record per digest despite the mid-sweep mutation
  // (the generation handoff re-queues yielded remainders, which must
  // not double-journal).
  EXPECT_EQ(rec.journaled, rec.scanned.covered());
  ASSERT_EQ(rec.found.size(), 2u);
  EXPECT_NE(rec.found[0].first, rec.found[1].first);
  // The add record precedes the found record of the digest it added.
  using Event = JobStore::RecoveredJob::TargetEvent;
  const auto add_it =
      std::find_if(rec.events.begin(), rec.events.end(), [](const Event& e) {
        return e.kind == Event::Kind::kAdd;
      });
  ASSERT_NE(add_it, rec.events.end());
  EXPECT_EQ(add_it->targets, std::vector<std::string>{late_hex});
  const auto late_found =
      std::find_if(rec.events.begin(), rec.events.end(), [&](const Event& e) {
        return e.kind == Event::Kind::kFound && e.digest_hex == late_hex;
      });
  ASSERT_NE(late_found, rec.events.end());
  EXPECT_LT(add_it - rec.events.begin(), late_found - rec.events.begin());
}

TEST_F(MutationTest, RemovingTheLastOutstandingTargetCompletesTheJob) {
  u128 space(0);
  const JobSpec spec = full_sweep_spec("shrink", &space);

  JobServiceConfig config;
  config.workers = 2;
  config.journal_path = journal_;
  JobManager manager(config);
  const JobId id = manager.submit(spec);
  wait_for_coverage(manager, id, u128(20000));

  EXPECT_EQ(manager.remove_targets(id, spec.request.target_hexes), 1u);
  ASSERT_TRUE(manager.wait(id, 60));
  const JobSnapshot snap = manager.status(id);
  EXPECT_EQ(snap.state, JobState::kDone);
  EXPECT_EQ(snap.targets_found, 0u);
  EXPECT_TRUE(snap.found.empty());
  EXPECT_LT(snap.scanned, space);  // detaching spared the rest of it

  const auto recovered = JobStore::load(journal_);
  ASSERT_EQ(recovered.size(), 1u);
  using Event = JobStore::RecoveredJob::TargetEvent;
  ASSERT_EQ(recovered[0].events.size(), 1u);
  EXPECT_EQ(recovered[0].events[0].kind, Event::Kind::kRemove);
  ASSERT_TRUE(recovered[0].final_state.has_value());
  EXPECT_EQ(*recovered[0].final_state, JobState::kDone);
}

TEST_F(MutationTest, KillAndResumeReplaysMutationsInOrder) {
  u128 space(0);
  const JobSpec spec = full_sweep_spec("phoenix", &space);
  const std::string late_key = key_at(spec, space - u128(777));
  const std::string late_hex = hash::Md5::digest(late_key).to_hex();

  {
    JobServiceConfig config;
    config.workers = 2;
    config.max_quantum = u128(8192);
    config.journal_path = journal_;
    JobManager first(config);
    const JobId id = first.submit(spec);
    wait_for_coverage(first, id, u128(30000));
    ASSERT_EQ(first.add_targets(id, {late_hex}).attached, 1u);
    wait_for_coverage(first, id, u128(60000));
    // Manager destroyed mid-sweep: in-flight quanta are interrupted
    // and only their tested prefixes are journaled.
  }

  JobServiceConfig config;
  config.workers = 2;
  config.journal_path = journal_;
  JobManager second(config);
  ASSERT_EQ(second.resume_from(journal_), 1u);
  const JobId id = second.find_job("phoenix").value();
  // The replayed add kept both targets attached across the restart.
  EXPECT_EQ(second.status(id).targets_total, 2u);
  ASSERT_TRUE(second.wait(id, 240));

  const JobSnapshot snap = second.status(id);
  EXPECT_EQ(snap.state, JobState::kDone);
  EXPECT_EQ(snap.targets_found, 2u);

  const auto recovered = JobStore::load(journal_);
  ASSERT_EQ(recovered.size(), 1u);
  // Exactly-once across the kill: no id journaled twice, and one found
  // record per digest even though the resumed sweep re-enters gaps.
  EXPECT_EQ(recovered[0].journaled, recovered[0].scanned.covered());
  EXPECT_EQ(recovered[0].scanned.covered(), space);
  ASSERT_EQ(recovered[0].found.size(), 2u);
  EXPECT_NE(recovered[0].found[0].first, recovered[0].found[1].first);
}

TEST_F(MutationTest, MutationOfTerminalOrUnknownJobsThrows) {
  JobSpec spec;
  spec.name = "tiny";
  spec.request.charset = keyspace::Charset("ab");
  spec.request.min_length = 1;
  spec.request.max_length = 2;
  spec.request.target_hexes = {hash::Md5::digest("ba").to_hex()};

  JobServiceConfig config;
  config.workers = 1;
  JobManager manager(config);
  const JobId id = manager.submit(spec);
  ASSERT_TRUE(manager.wait(id, 60));
  ASSERT_EQ(manager.status(id).state, JobState::kDone);

  EXPECT_THROW(manager.add_targets(id, {hash::Md5::digest("x").to_hex()}),
               InvalidArgument);
  EXPECT_THROW(manager.remove_targets(id, spec.request.target_hexes),
               InvalidArgument);
  EXPECT_THROW(manager.add_targets(id + 17, {}), InvalidArgument);
}

TEST_F(MutationTest, InvalidHexesAreRejectedBeforeJournaling) {
  u128 space(0);
  const JobSpec spec = full_sweep_spec("strict", &space);

  JobServiceConfig config;
  config.workers = 1;
  config.journal_path = journal_;
  JobManager manager(config);
  const JobId id = manager.submit(spec);

  EXPECT_THROW(manager.add_targets(id, {"not-a-digest"}), InvalidArgument);
  EXPECT_THROW(manager.remove_targets(id, {"zz"}), InvalidArgument);
  EXPECT_EQ(manager.status(id).targets_total, 1u);
  manager.cancel(id);
  ASSERT_TRUE(manager.wait(id, 60));

  // The doomed mutations left no journal record to poison a resume.
  const auto recovered = JobStore::load(journal_);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_TRUE(recovered[0].events.empty());
}

TEST_F(MutationTest, TargetRecordsRoundTripThroughTheJournal) {
  JobSpec spec;
  spec.name = "roundtrip";
  spec.request.charset = keyspace::Charset("ab");
  spec.request.min_length = 1;
  spec.request.max_length = 2;
  spec.request.target_hexes = {hash::Md5::digest("a").to_hex()};

  const std::vector<std::string> added = {hash::Md5::digest("p").to_hex(),
                                          hash::Md5::digest("q").to_hex()};
  {
    JobStore store(journal_);
    store.record_job(spec);
    store.record_targets_add(spec.name, added);
    store.record_found(spec.name, added[0], "p");
    store.record_targets_remove(spec.name, {added[1]});
  }

  const auto recovered = JobStore::load(journal_);
  ASSERT_EQ(recovered.size(), 1u);
  using Event = JobStore::RecoveredJob::TargetEvent;
  const auto& events = recovered[0].events;
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, Event::Kind::kAdd);
  EXPECT_EQ(events[0].targets, added);
  EXPECT_EQ(events[1].kind, Event::Kind::kFound);
  EXPECT_EQ(events[1].digest_hex, added[0]);
  EXPECT_EQ(events[1].key, "p");
  EXPECT_EQ(events[2].kind, Event::Kind::kRemove);
  EXPECT_EQ(events[2].targets, std::vector<std::string>{added[1]});
}

}  // namespace
}  // namespace gks::service
