// Checkpoint/resume: kill a job mid-sweep, reload the journal, and
// prove the union of scanned intervals covers the key space exactly
// once while the planted key is still found.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "hash/md5.h"
#include "keyspace/codec.h"
#include "keyspace/space.h"
#include "service/job_manager.h"
#include "support/error.h"

namespace gks::service {
namespace {

using namespace std::chrono_literals;

class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    journal_ = (std::filesystem::temp_directory_path() /
                (std::string("gks_resume_") + info->name() + ".jsonl"))
                   .string();
    std::filesystem::remove(journal_);
  }
  void TearDown() override {
    std::filesystem::remove(journal_);
    std::filesystem::remove(journal_ + ".quarantine");
  }

  std::string journal_;
};

/// Waits until the job has retired at least `floor` ids.
void wait_for_coverage(const JobManager& m, JobId id, const u128& floor) {
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  while (m.status(id).scanned < floor) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "no progress";
    std::this_thread::sleep_for(1ms);
  }
}

TEST_F(ResumeTest, KilledSweepResumesToExactlyOnceCoverage) {
  const keyspace::Charset charset = keyspace::Charset::lower();
  const u128 space = keyspace::space_size(charset.size(), 1, 5);
  // Plant the very last candidate of the enumeration: the sweep must
  // cover the entire space to find it, so full, exactly-once coverage
  // is provable from the journal afterwards.
  const keyspace::KeyCodec codec(charset,
                                 keyspace::DigitOrder::kPrefixFastest);
  const u128 offset = keyspace::first_id_of_length(charset.size(), 1);
  const std::string planted = codec.decode(offset + space - u128(1));

  JobSpec spec;
  spec.name = "killme";
  spec.request.algorithm = hash::Algorithm::kMd5;
  spec.request.target_hexes = {hash::Md5::digest(planted).to_hex()};
  spec.request.charset = charset;
  spec.request.min_length = 1;
  spec.request.max_length = 5;

  // Phase 1: run with tiny quanta and destroy the manager mid-sweep.
  {
    JobServiceConfig config;
    config.workers = 2;
    config.max_quantum = u128(8192);
    config.journal_path = journal_;
    JobManager first(config);
    const JobId id = first.submit(spec);
    wait_for_coverage(first, id, u128(50000));
  }
  u128 phase1_covered(0);
  {
    const auto recovered = JobStore::load(journal_);
    ASSERT_EQ(recovered.size(), 1u);
    const auto& rec = recovered[0];
    EXPECT_FALSE(rec.final_state.has_value());
    EXPECT_TRUE(rec.found.empty());  // the key is the last candidate
    EXPECT_GT(rec.journaled, u128(0));
    EXPECT_LT(rec.journaled, space);
    // Nothing journaled twice even in the interrupted run.
    EXPECT_EQ(rec.journaled, rec.scanned.covered());
    phase1_covered = rec.scanned.covered();
  }

  // Phase 2: a fresh manager resumes only the unscanned gaps.
  {
    JobServiceConfig config;
    config.workers = 2;
    config.journal_path = journal_;
    JobManager second(config);
    ASSERT_EQ(second.resume_from(journal_), 1u);
    const JobId id = second.find_job("killme").value();
    ASSERT_TRUE(second.wait(id, 240));
    const JobSnapshot s = second.status(id);
    EXPECT_EQ(s.state, JobState::kDone);
    EXPECT_EQ(s.targets_found, 1u);
    ASSERT_EQ(s.found.size(), 1u);
    EXPECT_EQ(s.found[0].second, planted);
    // The snapshot counts the recovered coverage plus the gap work.
    EXPECT_EQ(s.scanned, space);
  }

  // The journal across both runs: the union of scanned intervals
  // covers the space exactly once.
  const auto recovered = JobStore::load(journal_);
  ASSERT_EQ(recovered.size(), 1u);
  const auto& rec = recovered[0];
  ASSERT_TRUE(rec.final_state.has_value());
  EXPECT_EQ(*rec.final_state, JobState::kDone);
  EXPECT_EQ(rec.journaled, space);            // every id journaled once...
  EXPECT_EQ(rec.scanned.covered(), space);    // ...and none of them twice
  EXPECT_TRUE(rec.scanned.covers(keyspace::Interval(u128(0), space)));
  EXPECT_GT(phase1_covered, u128(0));  // phase 1 really contributed
  ASSERT_EQ(rec.found.size(), 1u);
  EXPECT_EQ(rec.found[0].second, planted);
}

TEST_F(ResumeTest, ReplayedRecoveryIsNotRecordedTwice) {
  // A journal whose found record has no covering interval — the shape
  // a crash between the found append and the interval append leaves
  // behind. The resumed sweep rescans that region and hits the key
  // again; the replayed recovery must absorb the duplicate.
  JobSpec spec;
  spec.name = "replay";
  spec.request.algorithm = hash::Algorithm::kMd5;
  spec.request.target_hexes = {hash::Md5::digest("aa").to_hex(),
                               hash::Md5::digest("zzzy").to_hex()};
  spec.request.charset = keyspace::Charset::lower();
  spec.request.min_length = 1;
  spec.request.max_length = 4;
  {
    JobStore store(journal_);
    store.record_job(spec);
    store.record_found("replay", hash::Md5::digest("aa").to_hex(), "aa");
  }

  JobServiceConfig config;
  config.workers = 2;
  config.journal_path = journal_;
  JobManager manager(config);
  ASSERT_EQ(manager.resume_from(journal_), 1u);
  const JobId id = manager.find_job("replay").value();
  ASSERT_TRUE(manager.wait(id, 240));
  const JobSnapshot s = manager.status(id);
  EXPECT_EQ(s.state, JobState::kDone);
  EXPECT_EQ(s.targets_found, 2u);
  ASSERT_EQ(s.found.size(), 2u);
  EXPECT_EQ(s.found[0].second, "aa");  // the replay, in recovery order

  const auto recovered = JobStore::load(journal_);
  ASSERT_EQ(recovered.size(), 1u);
  // One record per digest: "aa" once (the replayed one), "zzzy" once.
  EXPECT_EQ(recovered[0].found.size(), 2u);
}

TEST_F(ResumeTest, TerminalJobsAreNotResumed) {
  JobSpec spec;
  spec.name = "finished";
  spec.request.target_hexes = {hash::Md5::digest("7").to_hex()};
  spec.request.charset = keyspace::Charset::digits();
  spec.request.min_length = 1;
  spec.request.max_length = 2;
  {
    JobStore store(journal_);
    store.record_job(spec);
    store.record_state("finished", JobState::kDone);
    spec.name = "abandoned";
    store.record_job(spec);
    store.record_state("abandoned", JobState::kCancelled);
  }
  JobServiceConfig config;
  config.workers = 1;
  JobManager manager(config);
  EXPECT_EQ(manager.resume_from(journal_), 0u);
  EXPECT_TRUE(manager.snapshot_all().empty());
}

TEST_F(ResumeTest, FullyCoveredJobCompletesWithoutDispatch) {
  // Crash after the last interval record but before the state record:
  // resume finds no gaps and finishes the job immediately.
  JobSpec spec;
  spec.name = "covered";
  spec.request.target_hexes = {hash::Md5::digest("xx-not-there").to_hex()};
  spec.request.charset = keyspace::Charset::digits();
  spec.request.min_length = 1;
  spec.request.max_length = 2;
  const u128 space = keyspace::space_size(10, 1, 2);
  {
    JobStore store(journal_);
    store.record_job(spec);
    store.record_interval("covered", keyspace::Interval(u128(0), space));
  }
  JobServiceConfig config;
  config.workers = 1;
  config.journal_path = journal_;
  JobManager manager(config);
  ASSERT_EQ(manager.resume_from(journal_), 1u);
  const JobId id = manager.find_job("covered").value();
  ASSERT_TRUE(manager.wait(id, 60));
  const JobSnapshot s = manager.status(id);
  EXPECT_EQ(s.state, JobState::kDone);
  EXPECT_EQ(s.scanned, space);
  EXPECT_EQ(s.intervals_issued, 0u);  // nothing was dispatched again
}

TEST_F(ResumeTest, ResumeIntoADifferentJournalIsSelfContained) {
  const std::string second_journal = journal_ + ".moved";
  std::filesystem::remove(second_journal);

  JobSpec spec;
  spec.name = "mover";
  spec.request.target_hexes = {hash::Md5::digest("0000").to_hex()};
  spec.request.charset = keyspace::Charset::lower();
  spec.request.min_length = 1;
  // A 1..5 space (12.3M ids): phase 1 cannot race through the whole
  // sweep before the coverage poll kills it, so the job is reliably
  // non-terminal when phase 2 resumes it.
  spec.request.max_length = 5;
  const u128 space = keyspace::space_size(26, 1, 5);
  {
    JobServiceConfig config;
    config.workers = 2;
    config.max_quantum = u128(8192);
    config.journal_path = journal_;
    JobManager first(config);
    const JobId id = first.submit(spec);
    wait_for_coverage(first, id, u128(20000));
  }
  {
    JobServiceConfig config;
    config.workers = 2;
    config.journal_path = second_journal;
    JobManager second(config);
    ASSERT_EQ(second.resume_from(journal_), 1u);
    ASSERT_TRUE(second.wait(second.find_job("mover").value(), 240));
  }
  // The new journal alone reconstructs the whole job: spec, the
  // re-recorded phase-1 coverage, and the phase-2 records.
  const auto recovered = JobStore::load(second_journal);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].spec.name, "mover");
  EXPECT_EQ(recovered[0].journaled, space);
  EXPECT_EQ(recovered[0].scanned.covered(), space);
  ASSERT_TRUE(recovered[0].final_state.has_value());
  EXPECT_EQ(*recovered[0].final_state, JobState::kDone);
  std::filesystem::remove(second_journal);
}

TEST_F(ResumeTest, CorruptedMiddleRecordQuarantinesAndResumesToCompletion) {
  // The ISSUE-9 acceptance shape: damage one interval record in the
  // middle of a real killed-run journal, then prove resume quarantines
  // it (with position info), re-dispatches the lost interval, and
  // still runs the job to full exactly-once coverage.
  const keyspace::Charset charset = keyspace::Charset::lower();
  const u128 space = keyspace::space_size(charset.size(), 1, 4);
  const keyspace::KeyCodec codec(charset,
                                 keyspace::DigitOrder::kPrefixFastest);
  const u128 offset = keyspace::first_id_of_length(charset.size(), 1);
  const std::string planted = codec.decode(offset + space - u128(1));

  JobSpec spec;
  spec.name = "bitrot";
  spec.request.algorithm = hash::Algorithm::kMd5;
  spec.request.target_hexes = {hash::Md5::digest(planted).to_hex()};
  spec.request.charset = charset;
  spec.request.min_length = 1;
  spec.request.max_length = 4;

  {
    JobServiceConfig config;
    config.workers = 2;
    config.max_quantum = u128(4096);
    config.journal_path = journal_;
    JobManager first(config);
    const JobId id = first.submit(spec);
    wait_for_coverage(first, id, u128(20000));
  }

  // Corrupt an interval record in the middle of the file by flipping
  // bytes inside its payload (the CRC now disagrees).
  std::vector<std::string> lines;
  {
    std::ifstream in(journal_);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 3u);
  std::size_t victim = 0;
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    if (lines[i].find("\"type\":\"interval\"") != std::string::npos) {
      victim = i;
      break;
    }
  }
  ASSERT_GT(victim, 0u);
  lines[victim].replace(lines[victim].find("interval"), 8, "intervnl");
  {
    std::ofstream out(journal_, std::ios::trunc);
    for (const std::string& line : lines) out << line << '\n';
  }

  // Resume: the damaged record is skipped and reported, its interval
  // counts as unscanned and re-dispatches, and the sweep completes.
  JobServiceConfig config;
  config.workers = 2;
  config.journal_path = journal_;
  JobManager second(config);
  JobStore::LoadReport report;
  ASSERT_EQ(second.resume_from(journal_, &report), 1u);
  EXPECT_EQ(report.quarantined, 1u);
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find(journal_ + ":" + std::to_string(victim + 1)),
            std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(journal_ + ".quarantine"));

  const JobId id = second.find_job("bitrot").value();
  ASSERT_TRUE(second.wait(id, 240));
  const JobSnapshot s = second.status(id);
  EXPECT_EQ(s.state, JobState::kDone);
  EXPECT_EQ(s.targets_found, 1u);
  ASSERT_EQ(s.found.size(), 1u);
  EXPECT_EQ(s.found[0].second, planted);
  EXPECT_EQ(s.scanned, space);  // the quarantined interval was rescanned
}

TEST_F(ResumeTest, LiveNameCollisionIsRejected) {
  JobSpec spec;
  spec.name = "clash";
  spec.request.target_hexes = {hash::Md5::digest("0000").to_hex()};
  spec.request.charset = keyspace::Charset::lower();
  spec.request.min_length = 1;
  spec.request.max_length = 6;
  {
    JobStore store(journal_);
    store.record_job(spec);
  }
  JobServiceConfig config;
  config.workers = 1;
  JobManager manager(config);
  const JobId live = manager.submit(spec);
  EXPECT_THROW(manager.resume_from(journal_), InvalidArgument);
  manager.cancel(live);
  ASSERT_TRUE(manager.wait(live, 60));
}

}  // namespace
}  // namespace gks::service
