#include "service/scheduler.h"

#include <gtest/gtest.h>

#include <map>

#include "support/error.h"

namespace gks::service {
namespace {

TEST(FairShareScheduler, EmptyPicksNothing) {
  FairShareScheduler sched;
  EXPECT_FALSE(sched.pick().has_value());
  EXPECT_EQ(sched.runnable_count(), 0u);
}

TEST(FairShareScheduler, RejectsNonPositiveWeight) {
  FairShareScheduler sched;
  EXPECT_THROW(sched.add(1, 0.0, 0), InvalidArgument);
  EXPECT_THROW(sched.add(1, -2.0, 0), InvalidArgument);
}

TEST(FairShareScheduler, RejectsDuplicateId) {
  FairShareScheduler sched;
  sched.add(1, 1.0, 0);
  EXPECT_THROW(sched.add(1, 1.0, 0), InvalidArgument);
}

TEST(FairShareScheduler, PicksMinVtimeTiesByLowestId) {
  FairShareScheduler sched;
  sched.add(2, 1.0, 0);
  sched.add(1, 1.0, 0);
  // Both at vtime 0: the lower id wins.
  EXPECT_EQ(sched.pick().value(), 1u);
  sched.charge(1, u128(100));
  EXPECT_EQ(sched.pick().value(), 2u);
  sched.charge(2, u128(200));
  EXPECT_EQ(sched.pick().value(), 1u);
}

TEST(FairShareScheduler, EqualWeightsGetEqualShares) {
  FairShareScheduler sched;
  sched.add(1, 1.0, 0);
  sched.add(2, 1.0, 0);
  std::map<JobId, int> picks;
  for (int i = 0; i < 100; ++i) {
    const JobId id = sched.pick().value();
    ++picks[id];
    sched.charge(id, u128(1000));
  }
  EXPECT_EQ(picks[1], 50);
  EXPECT_EQ(picks[2], 50);
}

TEST(FairShareScheduler, WeightScalesTheShare) {
  FairShareScheduler sched;
  sched.add(1, 3.0, 0);
  sched.add(2, 1.0, 0);
  std::map<JobId, int> picks;
  for (int i = 0; i < 400; ++i) {
    const JobId id = sched.pick().value();
    ++picks[id];
    sched.charge(id, u128(1000));
  }
  // Weight 3 vs 1: three quarters of the quanta, plus/minus rounding.
  EXPECT_NEAR(picks[1], 300, 2);
  EXPECT_NEAR(picks[2], 100, 2);
}

TEST(FairShareScheduler, PriorityDoublesPerStep) {
  FairShareScheduler sched;
  sched.add(1, 1.0, 2);  // effective weight 4
  sched.add(2, 1.0, 0);  // effective weight 1
  std::map<JobId, int> picks;
  for (int i = 0; i < 500; ++i) {
    const JobId id = sched.pick().value();
    ++picks[id];
    sched.charge(id, u128(1000));
  }
  EXPECT_NEAR(picks[1], 400, 2);
  EXPECT_NEAR(picks[2], 100, 2);
}

TEST(FairShareScheduler, NonRunnableIsSkipped) {
  FairShareScheduler sched;
  sched.add(1, 1.0, 0);
  sched.add(2, 1.0, 0);
  sched.set_runnable(1, false);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sched.pick().value(), 2u);
    sched.charge(2, u128(1000));
  }
  EXPECT_EQ(sched.runnable_count(), 1u);
}

TEST(FairShareScheduler, LateJoinerDoesNotMonopolize) {
  FairShareScheduler sched;
  sched.add(1, 1.0, 0);
  for (int i = 0; i < 50; ++i) sched.charge(1, u128(1000));
  // Joins after job 1 accumulated lots of vtime: it must start from
  // "now", not replay the backlog.
  sched.add(2, 1.0, 0);
  std::map<JobId, int> picks;
  for (int i = 0; i < 100; ++i) {
    const JobId id = sched.pick().value();
    ++picks[id];
    sched.charge(id, u128(1000));
  }
  EXPECT_EQ(picks[1], 50);
  EXPECT_EQ(picks[2], 50);
}

TEST(FairShareScheduler, WakingFromPauseForfeitsSleepCredit) {
  FairShareScheduler sched;
  sched.add(1, 1.0, 0);
  sched.add(2, 1.0, 0);
  sched.set_runnable(1, false);
  for (int i = 0; i < 50; ++i) sched.charge(2, u128(1000));
  sched.set_runnable(1, true);
  // Without the fast-forward, job 1 would win the next 50 picks.
  std::map<JobId, int> picks;
  for (int i = 0; i < 100; ++i) {
    const JobId id = sched.pick().value();
    ++picks[id];
    sched.charge(id, u128(1000));
  }
  EXPECT_EQ(picks[1], 50);
  EXPECT_EQ(picks[2], 50);
}

TEST(FairShareScheduler, RemoveForgetsTheJob) {
  FairShareScheduler sched;
  sched.add(1, 1.0, 0);
  sched.remove(1);
  EXPECT_FALSE(sched.pick().has_value());
  EXPECT_EQ(sched.size(), 0u);
  // Removing again (or charging a removed job) is a no-op.
  sched.remove(1);
  sched.charge(1, u128(10));
  sched.set_runnable(1, true);
  EXPECT_FALSE(sched.pick().has_value());
}

}  // namespace
}  // namespace gks::service
