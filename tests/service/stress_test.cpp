// Concurrency stress for the job service — the suite the CI sanitizer
// job runs under AddressSanitizer (ServiceStress.*). Exercises
// concurrent submit/cancel/pause/status traffic and teardown races.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "hash/md5.h"
#include "service/job_manager.h"

namespace gks::service {
namespace {

using namespace std::chrono_literals;

JobSpec findable(const std::string& name) {
  JobSpec spec;
  spec.name = name;
  spec.request.target_hexes = {hash::Md5::digest("77").to_hex()};
  spec.request.charset = keyspace::Charset::digits();
  spec.request.min_length = 1;
  spec.request.max_length = 4;
  return spec;
}

JobSpec endless(const std::string& name) {
  JobSpec spec;
  spec.name = name;
  // Key "77" contains digits, not lower-case letters: never found, so
  // the 8e9-candidate sweep runs until cancelled.
  spec.request.target_hexes = {hash::Md5::digest("77").to_hex()};
  spec.request.charset = keyspace::Charset::lower();
  spec.request.min_length = 1;
  spec.request.max_length = 7;
  return spec;
}

TEST(ServiceStress, ConcurrentSubmitCancelStatus) {
  JobServiceConfig config;
  config.workers = 4;
  config.max_quantum = u128(8192);
  JobManager manager(config);

  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 5;
  std::vector<std::thread> clients;
  std::atomic<int> submitted{0};
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        // Built up piecewise: the operator+ chain trips GCC 12's
        // -Wrestrict false positive at -O3 with -Werror.
        std::string tag = "_";
        tag += std::to_string(t);
        tag += '_';
        tag += std::to_string(j);
        if (j % 2 == 0) {
          const JobId id = manager.submit(findable("find" + tag));
          // Status / pause / resume traffic racing the workers.
          manager.status(id);
          manager.pause(id);
          manager.status(id);
          manager.resume(id);
        } else {
          const JobId id = manager.submit(endless("cancel" + tag));
          const auto deadline = std::chrono::steady_clock::now() + 60s;
          while (manager.status(id).scanned == u128(0) &&
                 std::chrono::steady_clock::now() < deadline) {
            std::this_thread::sleep_for(1ms);
          }
          manager.cancel(id);
        }
        ++submitted;
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(submitted.load(), kThreads * kJobsPerThread);

  for (const JobSnapshot& s : manager.snapshot_all()) {
    const auto id = manager.find_job(s.name).value();
    ASSERT_TRUE(manager.wait(id, 240)) << s.name;
    const JobSnapshot final_s = manager.status(id);
    if (final_s.name.rfind("find", 0) == 0) {
      EXPECT_EQ(final_s.state, JobState::kDone) << final_s.name;
      EXPECT_EQ(final_s.targets_found, 1u) << final_s.name;
      ASSERT_EQ(final_s.found.size(), 1u) << final_s.name;
      EXPECT_EQ(final_s.found[0].second, "77") << final_s.name;
    } else {
      EXPECT_EQ(final_s.state, JobState::kCancelled) << final_s.name;
      EXPECT_LT(final_s.scanned, final_s.space) << final_s.name;
    }
  }
  manager.wait_all();
}

TEST(ServiceStress, DestroyWhileJobsAreRunning) {
  // Teardown races: the destructor must interrupt scans, join workers
  // and leave no dangling references, with jobs in every phase.
  for (int round = 0; round < 5; ++round) {
    JobServiceConfig config;
    config.workers = 3;
    config.max_quantum = u128(8192);
    JobManager manager(config);
    manager.submit(endless("long_a"));
    manager.submit(endless("long_b"));
    const JobId quick = manager.submit(findable("quick"));
    if (round % 2 == 0) {
      manager.wait(quick, 120);
    }
    // Manager destroyed with the long jobs still sweeping.
  }
}

TEST(ServiceStress, CancelStormOnOneJob) {
  JobServiceConfig config;
  config.workers = 2;
  JobManager manager(config);
  const JobId id = manager.submit(endless("target"));
  std::vector<std::thread> cancellers;
  for (int i = 0; i < 8; ++i) {
    cancellers.emplace_back([&] {
      manager.cancel(id);
      manager.status(id);
      manager.cancel(id);
    });
  }
  for (std::thread& c : cancellers) c.join();
  ASSERT_TRUE(manager.wait(id, 120));
  EXPECT_EQ(manager.status(id).state, JobState::kCancelled);
}

TEST(ServiceStress, PauseResumeStorm) {
  JobServiceConfig config;
  config.workers = 2;
  config.max_quantum = u128(8192);
  JobManager manager(config);
  const JobId id = manager.submit(findable("flapper"));
  std::atomic<bool> stop{false};
  std::thread flapper([&] {
    while (!stop.load()) {
      manager.pause(id);
      manager.resume(id);
    }
  });
  const bool finished = manager.wait(id, 240);
  stop.store(true);
  flapper.join();
  // The flapper may have left it paused right at the end; resume once
  // more and the job must complete.
  manager.resume(id);
  ASSERT_TRUE(finished || manager.wait(id, 240));
  EXPECT_EQ(manager.status(id).found.at(0).second, "77");
}

}  // namespace
}  // namespace gks::service
