#include "simgpu/arch.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace gks::simgpu {
namespace {

TEST(Arch, TableOneRowsMatchThePaper) {
  // Table I: multiprocessor architecture.
  const auto& cc1 = arch_for(ComputeCapability::kCc1x);
  EXPECT_EQ(cc1.cores_per_mp, 8u);
  EXPECT_EQ(cc1.core_groups, 1u);
  EXPECT_EQ(cc1.group_size, 8u);
  EXPECT_EQ(cc1.issue_cycles, 4u);
  EXPECT_EQ(cc1.warp_schedulers, 1u);
  EXPECT_FALSE(cc1.dual_issue);

  const auto& cc20 = arch_for(ComputeCapability::kCc20);
  EXPECT_EQ(cc20.cores_per_mp, 32u);
  EXPECT_EQ(cc20.core_groups, 2u);
  EXPECT_EQ(cc20.group_size, 16u);
  EXPECT_EQ(cc20.issue_cycles, 2u);
  EXPECT_EQ(cc20.warp_schedulers, 2u);
  EXPECT_FALSE(cc20.dual_issue);

  const auto& cc21 = arch_for(ComputeCapability::kCc21);
  EXPECT_EQ(cc21.cores_per_mp, 48u);
  EXPECT_EQ(cc21.core_groups, 3u);
  EXPECT_TRUE(cc21.dual_issue);

  const auto& cc30 = arch_for(ComputeCapability::kCc30);
  EXPECT_EQ(cc30.cores_per_mp, 192u);
  EXPECT_EQ(cc30.core_groups, 6u);
  EXPECT_EQ(cc30.group_size, 32u);
  EXPECT_EQ(cc30.issue_cycles, 1u);
  EXPECT_EQ(cc30.warp_schedulers, 4u);
  EXPECT_TRUE(cc30.dual_issue);
}

TEST(Arch, TableTwoThroughputsMatchThePaper) {
  // Table II: instruction throughput (ops/clock per MP). ADD on cc 1.x
  // is 8 regular + 2 SFU = the paper's 10.
  const auto& cc1 = arch_for(ComputeCapability::kCc1x);
  EXPECT_DOUBLE_EQ(cc1.peak_throughput(MachineOp::kIAdd), 10);
  EXPECT_DOUBLE_EQ(cc1.peak_throughput(MachineOp::kLop), 8);
  EXPECT_DOUBLE_EQ(cc1.peak_throughput(MachineOp::kShift), 8);
  EXPECT_DOUBLE_EQ(cc1.peak_throughput(MachineOp::kMadShift), 8);

  const auto& cc20 = arch_for(ComputeCapability::kCc20);
  EXPECT_DOUBLE_EQ(cc20.peak_throughput(MachineOp::kIAdd), 32);
  EXPECT_DOUBLE_EQ(cc20.peak_throughput(MachineOp::kShift), 16);

  const auto& cc21 = arch_for(ComputeCapability::kCc21);
  EXPECT_DOUBLE_EQ(cc21.peak_throughput(MachineOp::kIAdd), 48);
  EXPECT_DOUBLE_EQ(cc21.peak_throughput(MachineOp::kLop), 48);
  EXPECT_DOUBLE_EQ(cc21.peak_throughput(MachineOp::kShift), 16);
  EXPECT_DOUBLE_EQ(cc21.peak_throughput(MachineOp::kMadShift), 16);

  const auto& cc30 = arch_for(ComputeCapability::kCc30);
  EXPECT_DOUBLE_EQ(cc30.peak_throughput(MachineOp::kIAdd), 160);
  EXPECT_DOUBLE_EQ(cc30.peak_throughput(MachineOp::kLop), 160);
  EXPECT_DOUBLE_EQ(cc30.peak_throughput(MachineOp::kShift), 32);
  EXPECT_DOUBLE_EQ(cc30.peak_throughput(MachineOp::kMadShift), 32);
}

TEST(Arch, Cc35FunnelShiftQuadruplesRotationThroughput) {
  // Section V-B: one funnel instruction at double the shift rate
  // replaces the SHL+IMAD pair — 4x rotation throughput vs cc 3.0.
  const auto& cc30 = arch_for(ComputeCapability::kCc30);
  const auto& cc35 = arch_for(ComputeCapability::kCc35);
  const double rot30 = cc30.peak_throughput(MachineOp::kShift) / 2;
  const double rot35 = cc35.peak_throughput(MachineOp::kFunnel);
  EXPECT_DOUBLE_EQ(rot35 / rot30, 4.0);
  // Funnel shifts do not exist below 3.5.
  EXPECT_DOUBLE_EQ(cc30.peak_throughput(MachineOp::kFunnel), 0.0);
}

TEST(Arch, TableSevenDeviceSpecs) {
  const auto& devices = paper_devices();
  ASSERT_EQ(devices.size(), 5u);

  const auto& d8600 = device_by_name("8600M");
  EXPECT_EQ(d8600.mp_count, 4u);
  EXPECT_EQ(d8600.cores, 32u);
  EXPECT_DOUBLE_EQ(d8600.clock_mhz, 950);
  EXPECT_EQ(d8600.cc, ComputeCapability::kCc1x);

  const auto& d8800 = device_by_name("8800");
  EXPECT_EQ(d8800.mp_count, 16u);
  EXPECT_EQ(d8800.cores, 128u);
  EXPECT_DOUBLE_EQ(d8800.clock_mhz, 1625);

  const auto& d540 = device_by_name("540M");
  EXPECT_EQ(d540.mp_count, 2u);
  EXPECT_EQ(d540.cores, 96u);
  EXPECT_EQ(d540.cc, ComputeCapability::kCc21);

  const auto& d550 = device_by_name("550Ti");
  EXPECT_EQ(d550.mp_count, 4u);
  EXPECT_EQ(d550.cores, 192u);
  EXPECT_DOUBLE_EQ(d550.clock_mhz, 1800);

  const auto& d660 = device_by_name("660");
  EXPECT_EQ(d660.mp_count, 5u);
  EXPECT_EQ(d660.cores, 960u);
  EXPECT_DOUBLE_EQ(d660.clock_mhz, 1033);
  EXPECT_EQ(d660.cc, ComputeCapability::kCc30);
}

TEST(Arch, CoresAreGroupsTimesGroupSize) {
  for (const auto cc : all_capabilities()) {
    const auto& a = arch_for(cc);
    EXPECT_EQ(a.cores_per_mp, a.core_groups * a.group_size) << cc_name(cc);
  }
}

TEST(Arch, UnknownDeviceNameThrows) {
  EXPECT_THROW(device_by_name("Titan"), InvalidArgument);
}

TEST(Arch, MachineMixAccessorsAndScaling) {
  MachineMix mix;
  mix[MachineOp::kIAdd] = 150;
  mix[MachineOp::kLop] = 120;
  mix[MachineOp::kShift] = 43;
  mix[MachineOp::kMadShift] = 43;
  mix[MachineOp::kPrmt] = 3;
  EXPECT_EQ(mix.total(), 359u);
  EXPECT_EQ(mix.shift_class(), 89u);
  EXPECT_EQ(mix.addlop_class(), 270u);

  const MachineMix grown = mix.scaled(1.10);
  EXPECT_EQ(grown[MachineOp::kIAdd], 165u);
  EXPECT_EQ(grown[MachineOp::kPrmt], 3u);  // rounding keeps tiny classes
}

}  // namespace
}  // namespace gks::simgpu
