#include "simgpu/device.h"

#include <gtest/gtest.h>

#include "support/error.h"

#include "simgpu/model.h"

namespace gks::simgpu {
namespace {

KernelProfile test_profile() {
  KernelProfile p;
  p.per_candidate = PaperCounts::md5_final_cc2();
  p.ilp = 1;
  return p;
}

TEST(Device, SustainedThroughputIsCachedAndPositive) {
  SimulatedGpu gpu(device_by_name("660"));
  const double a = gpu.sustained_throughput(test_profile());
  const double b = gpu.sustained_throughput(test_profile());
  EXPECT_GT(a, 1e8);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Device, BatchSizeRespectsTheWatchdog) {
  LaunchPolicy policy;
  policy.target_kernel_s = 0.25;
  policy.watchdog_limit_s = 2.0;
  SimulatedGpu gpu(device_by_name("550Ti"), {}, policy);
  const auto profile = test_profile();
  const double throughput = gpu.sustained_throughput(profile);
  const double batch_time =
      gpu.batch_size(profile).to_double() / throughput;
  EXPECT_LT(batch_time, policy.watchdog_limit_s);
  EXPECT_NEAR(batch_time, policy.target_kernel_s, 0.01);
}

TEST(Device, ScanSecondsScalesLinearlyForLargeCounts) {
  SimulatedGpu gpu(device_by_name("660"));
  const auto profile = test_profile();
  const double t1 = gpu.scan_seconds(profile, u128(1) << 32);
  const double t2 = gpu.scan_seconds(profile, u128(1) << 33);
  EXPECT_NEAR(t2 / t1, 2.0, 0.01);
}

TEST(Device, SmallScansPayTheLaunchOverhead) {
  LaunchPolicy policy;
  policy.launch_overhead_s = 20e-6;
  SimulatedGpu gpu(device_by_name("660"), {}, policy);
  const auto profile = test_profile();
  // One candidate still costs a launch.
  EXPECT_GE(gpu.scan_seconds(profile, u128(1)), policy.launch_overhead_s);
  EXPECT_DOUBLE_EQ(gpu.scan_seconds(profile, u128(0)), 0.0);
}

TEST(Device, ManyLaunchesAccumulateOverhead) {
  LaunchPolicy policy;
  policy.launch_overhead_s = 1e-3;  // exaggerated for visibility
  policy.target_kernel_s = 0.01;
  SimulatedGpu gpu(device_by_name("660"), {}, policy);
  const auto profile = test_profile();
  const u128 batch = gpu.batch_size(profile);
  const double one_batch = gpu.scan_seconds(profile, batch);
  const double ten_batches =
      gpu.scan_seconds(profile, u128::checked_mul(batch, u128(10)));
  EXPECT_NEAR(ten_batches, 10 * one_batch, one_batch * 0.01);
}

TEST(Device, EfficiencyGrowsWithScanSize) {
  // The premise of the tuning step: larger intervals amortize fixed
  // costs (Section III).
  SimulatedGpu gpu(device_by_name("540M"));
  const auto profile = test_profile();
  const double peak = gpu.sustained_throughput(profile);
  const auto efficiency = [&](std::uint64_t n) {
    return (n / gpu.scan_seconds(profile, u128(n))) / peak;
  };
  EXPECT_LT(efficiency(10000), efficiency(1000000));
  EXPECT_LT(efficiency(1000000), efficiency(400000000));
  EXPECT_GT(efficiency(400000000), 0.95);
}

TEST(Device, InvalidLaunchPolicyRejected) {
  LaunchPolicy bad;
  bad.target_kernel_s = 5.0;
  bad.watchdog_limit_s = 2.0;
  EXPECT_THROW(SimulatedGpu(device_by_name("660"), {}, bad), InvalidArgument);
}

TEST(Device, TheoreticalMatchesModel) {
  SimulatedGpu gpu(device_by_name("550Ti"));
  const MachineMix mix = PaperCounts::md5_final_cc2();
  EXPECT_DOUBLE_EQ(
      gpu.theoretical_throughput(mix),
      ThroughputModel::theoretical_throughput(device_by_name("550Ti"), mix));
}

}  // namespace
}  // namespace gks::simgpu
