#include "simgpu/kernel_profile.h"

#include <gtest/gtest.h>

#include "support/error.h"

#include "simgpu/lowering.h"
#include "simgpu/trace.h"

namespace gks::simgpu {
namespace {

std::size_t count(const std::vector<SrcInstr>& s, SrcOp op) {
  std::size_t n = 0;
  for (const auto& i : s) {
    if (i.op == op) ++n;
  }
  return n;
}

TEST(KernelProfile, Md5SourceCountsMatchTableThree) {
  // Table III counts the verbatim source operations of one MD5 hash.
  // With the rotation pseudo-op expanded as in the paper's source
  // ((x << n) + (x >> 32-n)): 320 ADD, 160 AND/OR/XOR, 128 shifts.
  // (Our direct count of RFC 1321 NOTs is 48 where the paper prints
  // 160 — see the deviations section of DESIGN.md.)
  const auto src = trace_md5(Md5KernelVariant::kSource, 4);
  const std::size_t rot = count(src, SrcOp::kRotl) + count(src, SrcOp::kRotr);
  EXPECT_EQ(count(src, SrcOp::kAdd) + rot, 320u);
  EXPECT_EQ(count(src, SrcOp::kAnd) + count(src, SrcOp::kOr) +
                count(src, SrcOp::kXor),
            160u);
  EXPECT_EQ(count(src, SrcOp::kShl) + count(src, SrcOp::kShr) + 2 * rot,
            128u);
  EXPECT_EQ(count(src, SrcOp::kNot), 48u);
  EXPECT_EQ(rot, 64u);  // one rotation per step
}

TEST(KernelProfile, Md5PlainCompiledShiftColumnsMatchTableFour) {
  // The shift/MAD columns of Table IV follow purely from the rotation
  // lowering and must match exactly: 128 shifts on cc 1.x, 64+64 on
  // cc 2.x/3.0.
  const auto plain = trace_md5(Md5KernelVariant::kPlainCompiled, 4);
  const MachineMix cc1 = lower(plain, {ComputeCapability::kCc1x});
  EXPECT_EQ(cc1[MachineOp::kShift], 128u);
  EXPECT_EQ(cc1[MachineOp::kMadShift], 0u);

  const MachineMix cc2 = lower(plain, {ComputeCapability::kCc30});
  EXPECT_EQ(cc2[MachineOp::kShift], 64u);
  EXPECT_EQ(cc2[MachineOp::kMadShift], 64u);

  // IADD differs between the columns by exactly the 64 rotate adds.
  EXPECT_EQ(cc1[MachineOp::kIAdd] - cc2[MachineOp::kIAdd], 64u);
}

TEST(KernelProfile, Md5PlainCompiledCountsAreNearPaperTableFour) {
  // Constant folding differs in detail from nvcc's, so IADD/LOP land
  // near, not on, the paper's 220/155 (cc 2.x column).
  const auto plain = trace_md5(Md5KernelVariant::kPlainCompiled, 4);
  const MachineMix cc2 = lower(plain, {ComputeCapability::kCc30});
  EXPECT_NEAR(cc2[MachineOp::kIAdd], 220.0, 40.0);
  EXPECT_NEAR(cc2[MachineOp::kLop], 155.0, 10.0);
}

TEST(KernelProfile, Md5ReversedShiftColumnsMatchTableFive) {
  // Table V: 90 shifts on cc 1.x (45 rotations * 2), 46+46 on cc 2.x.
  // Our common path is 46 steps = 46 rotations: 92 vs the paper's 90,
  // 46/46 exactly as printed.
  const auto rev = trace_md5(Md5KernelVariant::kReversed, 4);
  const MachineMix cc2 = lower(rev, {ComputeCapability::kCc30});
  EXPECT_EQ(cc2[MachineOp::kShift], 46u);
  EXPECT_EQ(cc2[MachineOp::kMadShift], 46u);
}

TEST(KernelProfile, BytePermMatchesTableSixDelta) {
  // Table VI: enabling __byte_perm moves the 16-bit rotations of MD5's
  // third round into PRMT: 46/46 becomes 43/43 + 3 PRMT in the paper
  // (we count 4 sixteen-bit rotations in 46 steps — within one).
  const auto rev = trace_md5(Md5KernelVariant::kReversed, 4);
  LoweringOptions opt{ComputeCapability::kCc30};
  opt.use_byte_perm = true;
  const MachineMix mix = lower(rev, opt);
  EXPECT_GE(mix[MachineOp::kPrmt], 3u);
  EXPECT_LE(mix[MachineOp::kPrmt], 4u);
  EXPECT_EQ(mix[MachineOp::kShift] + mix[MachineOp::kPrmt], 46u + 0u);
}

TEST(KernelProfile, ReversedKernelIsCheaperThanPlain) {
  // The reversal + early exit must reduce every class (the ~1.25x of
  // Section V-B).
  const auto plain = trace_md5(Md5KernelVariant::kPlainCompiled, 4);
  const auto rev = trace_md5(Md5KernelVariant::kReversed, 4);
  const MachineMix p = lower(plain, {ComputeCapability::kCc30});
  const MachineMix r = lower(rev, {ComputeCapability::kCc30});
  EXPECT_LT(r.total(), p.total());
  const double speedup =
      static_cast<double>(p.total()) / static_cast<double>(r.total());
  EXPECT_GT(speedup, 1.15);
  EXPECT_LT(speedup, 1.55);
}

TEST(KernelProfile, ReversedNoEarlyExitSitsBetween) {
  const auto rev = trace_md5(Md5KernelVariant::kReversed, 4);
  const auto barswf = trace_md5(Md5KernelVariant::kReversedNoEarlyExit, 4);
  const auto plain = trace_md5(Md5KernelVariant::kPlainCompiled, 4);
  const LoweringOptions opt{ComputeCapability::kCc30};
  EXPECT_LT(lower(rev, opt).total(), lower(barswf, opt).total());
  EXPECT_LT(lower(barswf, opt).total(), lower(plain, opt).total());
}

TEST(KernelProfile, Sha1RatioIsLowerThanMd5) {
  // Section V-B: SHA1's addition/logical to shift/MAD ratio is ~1.53
  // versus MD5's ~2.93 — SHA1 is the more shift-bound kernel.
  const LoweringOptions opt{ComputeCapability::kCc30};
  const MachineMix md5 =
      lower(trace_md5(Md5KernelVariant::kReversed, 4), opt);
  const MachineMix sha1 =
      lower(trace_sha1(Sha1KernelVariant::kOptimized, 4), opt);
  const double r_md5 =
      static_cast<double>(md5.addlop_class()) / md5.shift_class();
  const double r_sha1 =
      static_cast<double>(sha1.addlop_class()) / sha1.shift_class();
  EXPECT_LT(r_sha1, r_md5);
  EXPECT_NEAR(r_sha1, 1.53, 0.45);
  EXPECT_NEAR(r_md5, 2.93, 0.45);
}

TEST(KernelProfile, Sha1OptimizedCheaperThanPlain) {
  const LoweringOptions opt{ComputeCapability::kCc30};
  EXPECT_LT(lower(trace_sha1(Sha1KernelVariant::kOptimized, 4), opt).total(),
            lower(trace_sha1(Sha1KernelVariant::kPlainCompiled, 4), opt)
                .total());
}

TEST(KernelProfile, Sha1SourceHasEightyRotationsPlusExpansion) {
  const auto src = trace_sha1(Sha1KernelVariant::kSource, 4);
  // 2 rotations per step (rotl a,5 and rotl b,30) plus 1 per expanded
  // word (64 expansions): 160 + 64 = 224.
  EXPECT_EQ(count(src, SrcOp::kRotl), 224u);
}

TEST(KernelProfile, LongerKeysCostMoreSymbolicWords) {
  const LoweringOptions opt{ComputeCapability::kCc30};
  const auto len4 = lower(trace_md5(Md5KernelVariant::kPlainCompiled, 4), opt);
  const auto len12 =
      lower(trace_md5(Md5KernelVariant::kPlainCompiled, 12), opt);
  // More message words are runtime values, so fewer additions fold.
  EXPECT_GT(len12[MachineOp::kIAdd], len4[MachineOp::kIAdd]);
}

TEST(KernelProfile, Sha256NonceTraceIsNonTrivial) {
  const auto src = trace_sha256_nonce();
  const MachineMix mix = lower(src, {ComputeCapability::kCc30});
  // 64 steps with expansions: well above MD5's cost.
  EXPECT_GT(mix.total(), 600u);
  EXPECT_GT(mix.shift_class(), 100u);
}

TEST(KernelProfile, EffectiveMixAppliesOverhead) {
  KernelProfile p;
  p.per_candidate[MachineOp::kIAdd] = 100;
  p.overhead_fraction = 0.10;
  EXPECT_EQ(p.effective_mix()[MachineOp::kIAdd], 110u);
}

TEST(KernelProfile, OversizedKeyLengthRejected) {
  EXPECT_THROW(trace_md5(Md5KernelVariant::kPlainCompiled, 21),
               InvalidArgument);
  EXPECT_THROW(trace_sha1(Sha1KernelVariant::kPlainCompiled, 21),
               InvalidArgument);
}

}  // namespace
}  // namespace gks::simgpu
