#include "simgpu/lowering.h"

#include <gtest/gtest.h>

namespace gks::simgpu {
namespace {

std::vector<SrcInstr> one(SrcOp op, unsigned amount = 0) {
  return {{op, amount}};
}

TEST(Lowering, BasicOpsMapToTheirClasses) {
  LoweringOptions opt{ComputeCapability::kCc30};
  EXPECT_EQ(lower(one(SrcOp::kAdd), opt)[MachineOp::kIAdd], 1u);
  EXPECT_EQ(lower(one(SrcOp::kAnd), opt)[MachineOp::kLop], 1u);
  EXPECT_EQ(lower(one(SrcOp::kOr), opt)[MachineOp::kLop], 1u);
  EXPECT_EQ(lower(one(SrcOp::kXor), opt)[MachineOp::kLop], 1u);
  EXPECT_EQ(lower(one(SrcOp::kShl), opt)[MachineOp::kShift], 1u);
  EXPECT_EQ(lower(one(SrcOp::kShr), opt)[MachineOp::kShift], 1u);
}

TEST(Lowering, NotIsMergedByDefault) {
  LoweringOptions opt{ComputeCapability::kCc21};
  EXPECT_EQ(lower(one(SrcOp::kNot), opt).total(), 0u);
  opt.merge_not = false;
  EXPECT_EQ(lower(one(SrcOp::kNot), opt)[MachineOp::kLop], 1u);
}

TEST(Lowering, RotationOnCc1xIsShlShrAdd) {
  LoweringOptions opt{ComputeCapability::kCc1x};
  const MachineMix mix = lower(one(SrcOp::kRotl, 7), opt);
  EXPECT_EQ(mix[MachineOp::kShift], 2u);
  EXPECT_EQ(mix[MachineOp::kIAdd], 1u);
  EXPECT_EQ(mix.total(), 3u);
}

TEST(Lowering, RotationOnCc2xAndCc30IsShlPlusMad) {
  for (const auto cc : {ComputeCapability::kCc20, ComputeCapability::kCc21,
                        ComputeCapability::kCc30}) {
    LoweringOptions opt{cc};
    const MachineMix mix = lower(one(SrcOp::kRotl, 7), opt);
    EXPECT_EQ(mix[MachineOp::kShift], 1u) << cc_name(cc);
    EXPECT_EQ(mix[MachineOp::kMadShift], 1u) << cc_name(cc);
    EXPECT_EQ(mix[MachineOp::kIAdd], 0u)
        << "the MAD absorbs the addition, " << cc_name(cc);
  }
}

TEST(Lowering, RotationOnCc35IsOneFunnelShift) {
  LoweringOptions opt{ComputeCapability::kCc35};
  const MachineMix mix = lower(one(SrcOp::kRotl, 7), opt);
  EXPECT_EQ(mix[MachineOp::kFunnel], 1u);
  EXPECT_EQ(mix.total(), 1u);
}

TEST(Lowering, BytePermHandlesByteAlignedRotations) {
  LoweringOptions opt{ComputeCapability::kCc30};
  opt.use_byte_perm = true;
  EXPECT_EQ(lower(one(SrcOp::kRotl, 16), opt)[MachineOp::kPrmt], 1u);
  EXPECT_EQ(lower(one(SrcOp::kRotl, 8), opt)[MachineOp::kPrmt], 1u);
  EXPECT_EQ(lower(one(SrcOp::kRotr, 24), opt)[MachineOp::kPrmt], 1u);
  // Non-byte-aligned rotations still expand.
  const MachineMix mix = lower(one(SrcOp::kRotl, 7), opt);
  EXPECT_EQ(mix[MachineOp::kPrmt], 0u);
  EXPECT_EQ(mix[MachineOp::kShift], 1u);
}

TEST(Lowering, BytePermUnavailableOnCc1x) {
  LoweringOptions opt{ComputeCapability::kCc1x};
  opt.use_byte_perm = true;
  EXPECT_EQ(lower(one(SrcOp::kRotl, 16), opt)[MachineOp::kPrmt], 0u);
}

TEST(Lowering, LegacyRotateForcesOldExpansionOnNewArch) {
  LoweringOptions opt{ComputeCapability::kCc30};
  opt.legacy_rotate = true;
  const MachineMix mix = lower(one(SrcOp::kRotl, 7), opt);
  EXPECT_EQ(mix[MachineOp::kShift], 2u);
  EXPECT_EQ(mix[MachineOp::kIAdd], 1u);
  EXPECT_EQ(mix[MachineOp::kMadShift], 0u);
}

TEST(Lowering, RotrLowersLikeRotl) {
  LoweringOptions opt{ComputeCapability::kCc21};
  EXPECT_EQ(lower(one(SrcOp::kRotr, 11), opt).counts,
            lower(one(SrcOp::kRotl, 11), opt).counts);
}

TEST(Lowering, MixedStreamAccumulates) {
  LoweringOptions opt{ComputeCapability::kCc30};
  std::vector<SrcInstr> stream = {
      {SrcOp::kAdd, 0}, {SrcOp::kAdd, 0},  {SrcOp::kXor, 0},
      {SrcOp::kNot, 0}, {SrcOp::kRotl, 7}, {SrcOp::kShr, 3},
  };
  const MachineMix mix = lower(stream, opt);
  EXPECT_EQ(mix[MachineOp::kIAdd], 2u);
  EXPECT_EQ(mix[MachineOp::kLop], 1u);
  EXPECT_EQ(mix[MachineOp::kShift], 2u);  // rotl's SHL + the SHR
  EXPECT_EQ(mix[MachineOp::kMadShift], 1u);
}

}  // namespace
}  // namespace gks::simgpu
