#include "simgpu/model.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace gks::simgpu {
namespace {

// Feeding the paper's own Table VI counts through the Section VI-B
// formulas must reproduce the paper's theoretical row of Table VIII.
struct TheoreticalCase {
  const char* device;
  double expected_mkeys;
  double tolerance;
};

class PaperTheoretical : public ::testing::TestWithParam<TheoreticalCase> {};

TEST_P(PaperTheoretical, MatchesTableEight) {
  const auto& p = GetParam();
  const DeviceSpec& dev = device_by_name(p.device);
  const MachineMix mix = PaperCounts::md5_final(dev.cc);
  EXPECT_NEAR(ThroughputModel::theoretical_mkeys(dev, mix), p.expected_mkeys,
              p.tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    TableEight, PaperTheoretical,
    ::testing::Values(TheoreticalCase{"8600M", 83, 1.0},
                      TheoreticalCase{"8800", 568, 1.5},
                      TheoreticalCase{"540M", 359.4, 0.5},
                      TheoreticalCase{"550Ti", 962.7, 0.5},
                      TheoreticalCase{"660", 1851, 10.0}));

TEST(Model, Cc1xSerializesInstructionClasses) {
  // T = N_ADD/10 + N_LOP/8 + N_SHM/8 for the paper's cc 1.x counts
  // (197, 118, 90): 19.7 + 14.75 + 11.25 = 45.7 cycles.
  const auto& arch = arch_for(ComputeCapability::kCc1x);
  EXPECT_NEAR(ThroughputModel::cycles_per_candidate(
                  arch, PaperCounts::md5_final_cc1()),
              45.7, 0.01);
}

TEST(Model, Cc21IsTotalIssueBoundForMd5) {
  // MD5's ratio ~2.93 ≈ 3 groups: all instructions effectively run at
  // the 48/clock rate → 359/48 cycles.
  const auto& arch = arch_for(ComputeCapability::kCc21);
  EXPECT_NEAR(ThroughputModel::cycles_per_candidate(
                  arch, PaperCounts::md5_final_cc2()),
              359.0 / 48.0, 1e-9);
}

TEST(Model, Cc30IsShiftBoundForMd5) {
  // X_3.0 = X_SHM * MP / N_SHM: the dedicated shift group is the
  // bottleneck (89 shift-class ops / 32 per clock).
  const auto& arch = arch_for(ComputeCapability::kCc30);
  EXPECT_NEAR(ThroughputModel::cycles_per_candidate(
                  arch, PaperCounts::md5_final_cc2()),
              89.0 / 32.0, 1e-9);
}

TEST(Model, ShiftHeavyMixBindsTheSharedGroupOnCc21) {
  // A SHA1-like mix (ratio < 2) must be bound by the single shift
  // group, not total issue.
  MachineMix mix;
  mix[MachineOp::kIAdd] = 100;
  mix[MachineOp::kLop] = 100;
  mix[MachineOp::kShift] = 100;
  mix[MachineOp::kMadShift] = 100;
  const auto& arch = arch_for(ComputeCapability::kCc21);
  EXPECT_NEAR(ThroughputModel::cycles_per_candidate(arch, mix), 200.0 / 16.0,
              1e-9);
}

TEST(Model, ThroughputScalesWithClockAndMpCount) {
  const MachineMix mix = PaperCounts::md5_final_cc2();
  DeviceSpec a{"half", ComputeCapability::kCc30, 2, 384, 1000};
  DeviceSpec b{"full", ComputeCapability::kCc30, 4, 768, 1000};
  DeviceSpec c{"fast", ComputeCapability::kCc30, 2, 384, 2000};
  const double ta = ThroughputModel::theoretical_throughput(a, mix);
  EXPECT_DOUBLE_EQ(ThroughputModel::theoretical_throughput(b, mix), 2 * ta);
  EXPECT_DOUBLE_EQ(ThroughputModel::theoretical_throughput(c, mix), 2 * ta);
}

TEST(Model, Cc35FunnelBeatsCc30OnRotationHeavyMix) {
  MachineMix rot30;
  rot30[MachineOp::kShift] = 64;
  rot30[MachineOp::kMadShift] = 64;
  rot30[MachineOp::kIAdd] = 100;
  MachineMix rot35;
  rot35[MachineOp::kFunnel] = 64;
  rot35[MachineOp::kIAdd] = 100;
  const double c30 = ThroughputModel::cycles_per_candidate(
      arch_for(ComputeCapability::kCc30), rot30);
  const double c35 = ThroughputModel::cycles_per_candidate(
      arch_for(ComputeCapability::kCc35), rot35);
  EXPECT_NEAR(c30 / c35, 4.0, 1e-9);  // the quadrupled rotation rate
}

TEST(Model, EmptyMixRejected) {
  EXPECT_THROW(ThroughputModel::cycles_per_candidate(
                   arch_for(ComputeCapability::kCc30), MachineMix{}),
               InvalidArgument);
}

TEST(Model, PaperCountsTablesAreExact) {
  EXPECT_EQ(PaperCounts::md5_plain_cc1()[MachineOp::kIAdd], 284u);
  EXPECT_EQ(PaperCounts::md5_plain_cc2()[MachineOp::kShift], 64u);
  EXPECT_EQ(PaperCounts::md5_optimized_cc2()[MachineOp::kIAdd], 150u);
  EXPECT_EQ(PaperCounts::md5_final_cc2()[MachineOp::kPrmt], 3u);
  EXPECT_EQ(PaperCounts::md5_final_cc2().total(), 359u);
}

}  // namespace
}  // namespace gks::simgpu
