#include "simgpu/simt.h"

#include <gtest/gtest.h>

#include "support/error.h"

#include "simgpu/model.h"

namespace gks::simgpu {
namespace {

KernelProfile md5_profile(ComputeCapability cc, unsigned ilp) {
  KernelProfile p;
  p.per_candidate = PaperCounts::md5_final(cc);
  p.ilp = ilp;
  p.overhead_fraction = 0.01;
  return p;
}

double mkeys(const char* device, unsigned ilp) {
  const DeviceSpec& dev = device_by_name(device);
  return SimtSimulator::device_throughput(dev, md5_profile(dev.cc, ilp)) /
         1e6;
}

TEST(Simt, Cc1xDevicesLandNearPaperMeasurements) {
  // Paper Table VIII "our approach": 71 on the 8600M, 480 on the 8800.
  EXPECT_NEAR(mkeys("8600M", 1), 71, 8);
  EXPECT_NEAR(mkeys("8800", 1), 480, 45);
}

TEST(Simt, FermiWithoutIlpSitsAtTwoThirdsOfPeak) {
  // The headline Fermi result: 2 single-issue-effective schedulers can
  // start only 2 of 3 groups per slot. Paper: 654 measured vs 962.7
  // theoretical on the 550 Ti.
  const double measured = mkeys("550Ti", 1);
  EXPECT_NEAR(measured, 654, 60);
  const double theoretical = ThroughputModel::theoretical_mkeys(
      device_by_name("550Ti"), PaperCounts::md5_final_cc2());
  EXPECT_NEAR(measured / theoretical, 2.0 / 3.0, 0.05);
}

TEST(Simt, FermiIlpInterleavingRecoversThePeak) {
  // "A better ILP factor ... is nevertheless a good choice on Fermi."
  const double ilp1 = mkeys("550Ti", 1);
  const double ilp2 = mkeys("550Ti", 2);
  EXPECT_GT(ilp2 / ilp1, 1.3);
  const double theoretical = ThroughputModel::theoretical_mkeys(
      device_by_name("550Ti"), PaperCounts::md5_final_cc2());
  EXPECT_GT(ilp2 / theoretical, 0.9);
}

TEST(Simt, KeplerReachesNearMaximalThroughputWithoutIlp) {
  // Paper: 1841 of 1851 theoretical on the GTX 660 (99.46%).
  const double measured = mkeys("660", 1);
  const double theoretical = ThroughputModel::theoretical_mkeys(
      device_by_name("660"), PaperCounts::md5_final_cc2());
  EXPECT_GT(measured / theoretical, 0.93);
  EXPECT_NEAR(measured, 1841, 130);
}

TEST(Simt, KeplerGainsLittleFromIlp) {
  // "Providing a better ILP factor would be pointless on cc 3.0."
  const double ilp1 = mkeys("660", 1);
  const double ilp2 = mkeys("660", 2);
  EXPECT_LT(ilp2 / ilp1, 1.10);
}

TEST(Simt, DualIssueFractionIsStructurallyZeroWithoutIlp) {
  // The profiler observation of Section V-B: "the number of
  // instructions dispatched in a dual-issue fashion is very low".
  const DeviceSpec& dev = device_by_name("550Ti");
  SimtSimulator sim(dev.arch());
  const SimtResult r = sim.run(md5_profile(dev.cc, 1));
  EXPECT_LT(r.dual_issue_fraction, 0.10);

  const SimtResult r2 = sim.run(md5_profile(dev.cc, 2));
  EXPECT_GT(r2.dual_issue_fraction, 0.25);
}

TEST(Simt, ThroughputNeverExceedsTheAnalyticBound) {
  for (const auto& dev : paper_devices()) {
    for (unsigned ilp : {1u, 2u, 4u}) {
      const double sim =
          SimtSimulator::device_throughput(dev, md5_profile(dev.cc, ilp));
      const double bound = ThroughputModel::theoretical_throughput(
          dev, md5_profile(dev.cc, ilp).effective_mix());
      EXPECT_LE(sim, bound * 1.005) << dev.name << " ilp " << ilp;
    }
  }
}

TEST(Simt, ShiftGroupIsTheBusiestOnKepler) {
  const DeviceSpec& dev = device_by_name("660");
  SimtSimulator sim(dev.arch());
  const SimtResult r = sim.run(md5_profile(dev.cc, 1));
  ASSERT_EQ(r.group_utilization.size(), 6u);
  // Group 0 is the shift/MAD group; the kernel is shift-bound.
  EXPECT_GT(r.group_utilization[0], 0.9);
}

TEST(Simt, ResultIsDeterministic) {
  const DeviceSpec& dev = device_by_name("660");
  SimtSimulator sim(dev.arch());
  const auto a = sim.run(md5_profile(dev.cc, 1));
  const auto b = sim.run(md5_profile(dev.cc, 1));
  EXPECT_DOUBLE_EQ(a.candidates_per_cycle, b.candidates_per_cycle);
}

TEST(Simt, FewResidentWarpsStarveTheSchedulers) {
  const DeviceSpec& dev = device_by_name("660");
  SimtConfig starved;
  starved.resident_warps = 4;
  SimtConfig healthy;
  const double low =
      SimtSimulator::device_throughput(dev, md5_profile(dev.cc, 1), starved);
  const double high =
      SimtSimulator::device_throughput(dev, md5_profile(dev.cc, 1), healthy);
  EXPECT_LT(low, 0.6 * high);
}

TEST(Simt, InvalidConfigurationRejected) {
  const auto& arch = arch_for(ComputeCapability::kCc30);
  SimtConfig bad;
  bad.resident_warps = 0;
  EXPECT_THROW(SimtSimulator(arch, bad), InvalidArgument);
  SimtConfig empty_window;
  empty_window.measure_cycles = 0;
  EXPECT_THROW(SimtSimulator(arch, empty_window), InvalidArgument);
  SimtSimulator sim(arch);
  KernelProfile empty;
  EXPECT_THROW(sim.run(empty), InvalidArgument);
}

}  // namespace
}  // namespace gks::simgpu
