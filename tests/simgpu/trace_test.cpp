#include "simgpu/trace.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace gks::simgpu {
namespace {

TEST(Trace, ConstantOperationsFoldAway) {
  TraceStream stream(true);
  TraceScope scope(stream);
  const TracedWord a(10), b(3);
  const TracedWord sum = a + b;
  const TracedWord prod = (a & b) | (a ^ b);
  const TracedWord rot = rotl(a, 5);
  EXPECT_TRUE(sum.is_constant());
  EXPECT_EQ(sum.constant_value(), 13u);
  EXPECT_TRUE(prod.is_constant());
  EXPECT_TRUE(rot.is_constant());
  EXPECT_EQ(rot.constant_value(), 10u << 5);
  EXPECT_TRUE(stream.instructions().empty());
}

TEST(Trace, SymbolPlusSymbolEmitsOneAdd) {
  TraceStream stream(true);
  TraceScope scope(stream);
  const TracedWord x = TracedWord::symbol();
  const TracedWord y = TracedWord::symbol();
  (void)(x + y);
  ASSERT_EQ(stream.instructions().size(), 1u);
  EXPECT_EQ(stream.instructions()[0].op, SrcOp::kAdd);
}

TEST(Trace, ConstantChainFoldsIntoOneAddAtMaterialization) {
  // (x + K1) + K2 + K3 must cost a single IADD, paid when the value
  // leaves the additive domain — nvcc's reassociation.
  TraceStream stream(true);
  TraceScope scope(stream);
  TracedWord x = TracedWord::symbol();
  TracedWord v = x + TracedWord(1) + TracedWord(2) + TracedWord(3);
  EXPECT_TRUE(stream.instructions().empty());
  (void)rotl(v, 7);  // materializes
  ASSERT_EQ(stream.instructions().size(), 2u);
  EXPECT_EQ(stream.instructions()[0].op, SrcOp::kAdd);
  EXPECT_EQ(stream.instructions()[1].op, SrcOp::kRotl);
  EXPECT_EQ(stream.instructions()[1].amount, 7u);
}

TEST(Trace, MaterializedOffsetIsPaidOnlyOnce) {
  // Two uses of the same (value + offset) cost one IADD total: copies
  // of a TracedWord share the SSA node (the value-numbering model).
  TraceStream stream(true);
  TraceScope scope(stream);
  TracedWord x = TracedWord::symbol();
  TracedWord v = x + TracedWord(42);
  TracedWord copy = v;
  (void)(v & TracedWord::symbol());     // materializes: ADD + AND
  (void)(copy ^ TracedWord::symbol());  // offset already paid: XOR only
  ASSERT_EQ(stream.instructions().size(), 3u);
  EXPECT_EQ(stream.count(SrcOp::kAdd), 1u);
  EXPECT_EQ(stream.count(SrcOp::kAnd), 1u);
  EXPECT_EQ(stream.count(SrcOp::kXor), 1u);
}

TEST(Trace, LogicWithConstantOperandStillEmits) {
  TraceStream stream(true);
  TraceScope scope(stream);
  (void)(TracedWord::symbol() & TracedWord(0xff));
  EXPECT_EQ(stream.count(SrcOp::kAnd), 1u);
}

TEST(Trace, NotOnSymbolEmits) {
  TraceStream stream(true);
  TraceScope scope(stream);
  (void)~TracedWord::symbol();
  EXPECT_EQ(stream.count(SrcOp::kNot), 1u);
  TraceStream stream2(true);
  {
    // ~constant folds (fresh scope needed).
  }
}

TEST(Trace, UnfoldedModeRecordsEverything) {
  // Table III counting: even constant-only operations are recorded.
  TraceStream stream(false);
  TraceScope scope(stream);
  const TracedWord a(1), b(2);
  (void)(a + b);
  (void)(a & b);
  (void)~a;
  (void)rotl(a, 3);
  (void)shr(a, 4);
  EXPECT_EQ(stream.instructions().size(), 5u);
  EXPECT_EQ(stream.count(SrcOp::kAdd), 1u);
  EXPECT_EQ(stream.count(SrcOp::kAnd), 1u);
  EXPECT_EQ(stream.count(SrcOp::kNot), 1u);
  EXPECT_EQ(stream.count(SrcOp::kRotl), 1u);
  EXPECT_EQ(stream.count(SrcOp::kShr), 1u);
}

TEST(Trace, RotationAmountIsRecorded) {
  TraceStream stream(true);
  TraceScope scope(stream);
  (void)rotl(TracedWord::symbol(), 16);
  (void)rotr(TracedWord::symbol(), 7);
  ASSERT_EQ(stream.instructions().size(), 2u);
  EXPECT_EQ(stream.instructions()[0].amount, 16u);
  EXPECT_EQ(stream.instructions()[1].op, SrcOp::kRotr);
  EXPECT_EQ(stream.instructions()[1].amount, 7u);
}

TEST(Trace, ForceEmitsPendingAdd) {
  TraceStream stream(true);
  TraceScope scope(stream);
  TracedWord v = TracedWord::symbol() + TracedWord(99);
  EXPECT_TRUE(stream.instructions().empty());
  v.force();
  EXPECT_EQ(stream.count(SrcOp::kAdd), 1u);
  v.force();  // idempotent
  EXPECT_EQ(stream.count(SrcOp::kAdd), 1u);
}

TEST(Trace, UsingTracedWordWithoutScopeThrows) {
  const TracedWord a = [] {
    TraceStream s(true);
    TraceScope scope(s);
    return TracedWord::symbol();
  }();
  EXPECT_THROW((void)(a + a), InternalError);
}

TEST(Trace, NestedScopesAreRejected) {
  TraceStream s1(true), s2(true);
  TraceScope outer(s1);
  EXPECT_THROW(TraceScope inner(s2), InvalidArgument);
}

TEST(Trace, ConstantValueAccessorGuards) {
  TraceStream s(true);
  TraceScope scope(s);
  EXPECT_THROW((void)TracedWord::symbol().constant_value(), InvalidArgument);
  EXPECT_EQ(TracedWord(7).constant_value(), 7u);
}

}  // namespace
}  // namespace gks::simgpu
