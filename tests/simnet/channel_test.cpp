#include "simnet/channel.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

namespace gks::simnet {
namespace {

Message text_msg(NodeId from, const std::string& text,
                 std::size_t wire = 64) {
  return Message{from, std::any(text), wire};
}

TEST(Mailbox, DeliversAfterLatency) {
  const VirtualClock clock(1e-3);
  LinkSpec spec;
  spec.latency_s = 10.0;  // 10 virtual seconds = 10 ms real
  Mailbox box(clock, spec);
  box.send(text_msg(1, "hello"));
  // Not deliverable immediately.
  EXPECT_FALSE(box.try_recv().has_value());
  // Blocking recv waits it out.
  const auto msg = box.recv(100.0);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(std::any_cast<std::string>(msg->payload), "hello");
  EXPECT_EQ(msg->from, 1u);
}

TEST(Mailbox, RecvTimesOutWhenEmpty) {
  const VirtualClock clock(1e-3);
  Mailbox box(clock, LinkSpec{});
  EXPECT_FALSE(box.recv(5.0).has_value());
}

TEST(Mailbox, ZeroLatencyDeliversPromptly) {
  const VirtualClock clock(1e-3);
  LinkSpec spec;
  spec.latency_s = 0.0;
  Mailbox box(clock, spec);
  box.send(text_msg(2, "now", 0));
  EXPECT_TRUE(box.recv(1.0).has_value());
}

TEST(Mailbox, BandwidthDelaysLargeMessages) {
  const VirtualClock clock(1e-3);
  LinkSpec spec;
  spec.latency_s = 0.0;
  spec.bandwidth_bps = 8.0;  // 1 byte per virtual second
  EXPECT_NEAR(spec.transfer_seconds(100), 100.0, 1e-9);
  Mailbox box(clock, spec);
  box.send(text_msg(1, "big", 50));  // 50 virtual seconds = 50 ms real
  EXPECT_FALSE(box.try_recv().has_value());
  EXPECT_TRUE(box.recv(200.0).has_value());
}

TEST(Mailbox, ExplicitDelayOverridesSpec) {
  const VirtualClock clock(1e-3);
  LinkSpec slow;
  slow.latency_s = 1000.0;
  Mailbox box(clock, slow);
  box.send_with_delay(text_msg(1, "fast"), 0.0);
  EXPECT_TRUE(box.recv(1.0).has_value());
}

TEST(Mailbox, EarliestDeadlineDeliveredFirst) {
  const VirtualClock clock(1e-3);
  Mailbox box(clock, LinkSpec{});
  box.send_with_delay(text_msg(1, "late"), 20.0);
  box.send_with_delay(text_msg(1, "early"), 1.0);
  const auto msg = box.recv(100.0);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(std::any_cast<std::string>(msg->payload), "early");
}

TEST(Mailbox, CrossThreadSendWakesReceiver) {
  const VirtualClock clock(1e-3);
  LinkSpec spec;
  spec.latency_s = 1.0;
  Mailbox box(clock, spec);
  std::thread sender([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    box.send(text_msg(7, "wake"));
  });
  const auto msg = box.recv(5000.0);
  sender.join();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->from, 7u);
}

TEST(Mailbox, ManyMessagesAllArrive) {
  const VirtualClock clock(1e-3);
  LinkSpec spec;
  spec.latency_s = 0.5;
  Mailbox box(clock, spec);
  for (int i = 0; i < 100; ++i) box.send(text_msg(1, std::to_string(i)));
  int received = 0;
  while (box.recv(50.0).has_value()) {
    if (++received == 100) break;
  }
  EXPECT_EQ(received, 100);
}

}  // namespace
}  // namespace gks::simnet
