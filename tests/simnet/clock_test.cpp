#include "simnet/clock.h"

#include <gtest/gtest.h>

#include "support/error.h"
#include "support/stopwatch.h"

namespace gks::simnet {
namespace {

TEST(VirtualClock, SleepScalesVirtualToReal) {
  const VirtualClock clock(1e-3);
  gks::Stopwatch timer;
  clock.sleep_virtual(20.0);  // 20 virtual seconds = 20 ms real
  const double real = timer.seconds();
  EXPECT_GE(real, 0.018);
  EXPECT_LT(real, 0.2);  // generous upper bound for CI jitter
}

TEST(VirtualClock, NonPositiveSleepReturnsImmediately) {
  const VirtualClock clock(1e-3);
  gks::Stopwatch timer;
  clock.sleep_virtual(0.0);
  clock.sleep_virtual(-5.0);
  EXPECT_LT(timer.seconds(), 0.01);
}

TEST(VirtualClock, ToVirtualInvertsTheScale) {
  const VirtualClock clock(1e-2);
  const auto real = std::chrono::milliseconds(50);
  EXPECT_NEAR(clock.to_virtual(real), 5.0, 1e-9);
}

TEST(VirtualClock, DeadlineIsInTheScaledFuture) {
  const VirtualClock clock(1e-3);
  const auto now = std::chrono::steady_clock::now();
  const auto deadline = clock.deadline(100.0);  // 100 ms real
  const double delta = std::chrono::duration<double>(deadline - now).count();
  EXPECT_NEAR(delta, 0.1, 0.01);
}

TEST(VirtualClock, UnitScalePreservesRealTime) {
  const VirtualClock clock(1.0);
  EXPECT_NEAR(clock.to_virtual(std::chrono::milliseconds(250)), 0.25, 1e-9);
}

TEST(VirtualClock, RejectsNonPositiveScale) {
  EXPECT_THROW(VirtualClock(0.0), InvalidArgument);
  EXPECT_THROW(VirtualClock(-1.0), InvalidArgument);
}

}  // namespace
}  // namespace gks::simnet
