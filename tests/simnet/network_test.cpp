#include "simnet/network.h"

#include <gtest/gtest.h>

#include "support/error.h"

#include <atomic>
#include <string>

namespace gks::simnet {
namespace {

TEST(Network, TopologyAccessors) {
  Network net(1e-3);
  const NodeId a = net.add_node("A");
  const NodeId b = net.add_node("B");
  const NodeId c = net.add_node("C");
  net.connect(a, b);
  net.connect(a, c);
  EXPECT_EQ(net.node_count(), 3u);
  EXPECT_EQ(net.name_of(a), "A");
  EXPECT_FALSE(net.parent_of(a).has_value());
  EXPECT_EQ(net.parent_of(b), a);
  EXPECT_EQ(net.children_of(a).size(), 2u);
  EXPECT_TRUE(net.children_of(b).empty());
}

TEST(Network, MessageRoundTripBothDirections) {
  Network net(1e-3);
  const NodeId a = net.add_node("A");
  const NodeId b = net.add_node("B");
  net.connect(a, b);

  net.send(a, b, std::string("down"));
  auto down = net.recv(b, 50.0);
  ASSERT_TRUE(down.has_value());
  EXPECT_EQ(std::any_cast<std::string>(down->payload), "down");
  EXPECT_EQ(down->from, a);

  net.send(b, a, std::string("up"));
  auto up = net.recv(a, 50.0);
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(std::any_cast<std::string>(up->payload), "up");
}

TEST(Network, UnconnectedNodesCannotTalk) {
  Network net(1e-3);
  const NodeId a = net.add_node("A");
  const NodeId b = net.add_node("B");
  const NodeId c = net.add_node("C");
  net.connect(a, b);
  EXPECT_THROW(net.send(a, c, 1), InvalidArgument);
  EXPECT_THROW(net.send(b, c, 1), InvalidArgument);
}

TEST(Network, InvalidTopologyRejected) {
  Network net(1e-3);
  const NodeId a = net.add_node("A");
  const NodeId b = net.add_node("B");
  const NodeId c = net.add_node("C");
  EXPECT_THROW(net.connect(a, a), InvalidArgument);
  net.connect(a, b);
  EXPECT_THROW(net.connect(c, b), InvalidArgument);  // second parent
}

TEST(Network, DownNodeDropsTraffic) {
  Network net(1e-3);
  const NodeId a = net.add_node("A");
  const NodeId b = net.add_node("B");
  net.connect(a, b);

  net.set_node_down(b, true);
  EXPECT_TRUE(net.is_down(b));
  net.send(a, b, 1);                       // to a dead node: dropped
  net.send(b, a, 2);                       // from a dead node: dropped
  EXPECT_FALSE(net.recv(b, 5.0).has_value());
  EXPECT_FALSE(net.recv(a, 5.0).has_value());

  net.set_node_down(b, false);
  net.send(a, b, 3);
  EXPECT_TRUE(net.recv(b, 50.0).has_value());
}

TEST(Network, LossyLinkDropsApproximatelyTheConfiguredFraction) {
  Network net(1e-3, /*seed=*/7);
  const NodeId a = net.add_node("A");
  const NodeId b = net.add_node("B");
  LinkSpec lossy;
  lossy.latency_s = 0.0;
  lossy.loss_probability = 0.5;
  net.connect(a, b, lossy);

  int delivered = 0;
  for (int i = 0; i < 400; ++i) {
    net.send(a, b, i);
    if (net.recv(b, 1.0).has_value()) ++delivered;
  }
  EXPECT_GT(delivered, 120);
  EXPECT_LT(delivered, 280);
}

TEST(Network, LinkLossCanBeChangedAtRuntime) {
  Network net(1e-3, /*seed=*/11);
  const NodeId a = net.add_node("A");
  const NodeId b = net.add_node("B");
  net.connect(a, b);

  net.set_link_loss(a, b, 1.0);  // partition
  net.send(a, b, 1);
  EXPECT_FALSE(net.recv(b, 5.0).has_value());

  net.set_link_loss(a, b, 0.0);  // heal
  net.send(a, b, 2);
  auto msg = net.recv(b, 50.0);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(std::any_cast<int>(msg->payload), 2);
  // Both directions are affected symmetrically.
  net.set_link_loss(a, b, 1.0);
  net.send(b, a, 3);
  EXPECT_FALSE(net.recv(a, 5.0).has_value());
}

TEST(Network, SetLinkLossValidatesItsArguments) {
  Network net(1e-3);
  const NodeId a = net.add_node("A");
  const NodeId b = net.add_node("B");
  const NodeId c = net.add_node("C");
  net.connect(a, b);
  EXPECT_THROW(net.set_link_loss(a, c, 0.5), InvalidArgument);
  EXPECT_THROW(net.set_link_loss(a, b, 1.5), InvalidArgument);
  EXPECT_THROW(net.set_link_loss(a, b, -0.1), InvalidArgument);
}

TEST(Network, NodeThreadsExchangeMessages) {
  Network net(1e-3);
  const NodeId parent = net.add_node("parent");
  const NodeId child = net.add_node("child");
  net.connect(parent, child);

  std::atomic<int> echoed{0};
  net.start(child, [&net, parent, child] {
    for (int i = 0; i < 10; ++i) {
      auto msg = net.recv(child, 1000.0);
      if (!msg) return;
      net.send(child, parent, std::any_cast<int>(msg->payload) * 2);
    }
  });

  for (int i = 1; i <= 10; ++i) net.send(parent, child, i);
  int sum = 0;
  for (int i = 0; i < 10; ++i) {
    auto msg = net.recv(parent, 1000.0);
    ASSERT_TRUE(msg.has_value());
    sum += std::any_cast<int>(msg->payload);
    ++echoed;
  }
  net.join_all();
  EXPECT_EQ(echoed.load(), 10);
  EXPECT_EQ(sum, 2 * (10 * 11) / 2);
}

TEST(Network, StartTwiceRejected) {
  Network net(1e-3);
  const NodeId a = net.add_node("A");
  net.start(a, [] {});
  EXPECT_THROW(net.start(a, [] {}), InvalidArgument);
  net.join_all();
}

}  // namespace
}  // namespace gks::simnet
