#include "support/error.h"

#include <gtest/gtest.h>

namespace gks {
namespace {

TEST(Error, RequireThrowsInvalidArgumentWithContext) {
  try {
    GKS_REQUIRE(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos) << what;
    EXPECT_NE(what.find("math is broken"), std::string::npos) << what;
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos) << what;
  }
}

TEST(Error, EnsureThrowsInternalError) {
  EXPECT_THROW(GKS_ENSURE(false, "invariant"), InternalError);
}

TEST(Error, PassingChecksDoNotThrow) {
  EXPECT_NO_THROW(GKS_REQUIRE(true, ""));
  EXPECT_NO_THROW(GKS_ENSURE(true, ""));
}

TEST(Error, HierarchyRootsAtError) {
  EXPECT_THROW(
      { throw InvalidArgument("x"); }, Error);
  EXPECT_THROW(
      { throw InternalError("y"); }, Error);
}

}  // namespace
}  // namespace gks
