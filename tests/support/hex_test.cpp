#include "support/hex.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace gks {
namespace {

TEST(Hex, EncodeEmpty) {
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>{}), "");
}

TEST(Hex, EncodeKnownBytes) {
  const std::uint8_t bytes[] = {0x00, 0x0f, 0xa5, 0xff};
  EXPECT_EQ(to_hex(bytes), "000fa5ff");
}

TEST(Hex, DecodeLowerAndUpperCase) {
  EXPECT_EQ(from_hex("0a1B2c"), (std::vector<std::uint8_t>{0x0a, 0x1b, 0x2c}));
}

TEST(Hex, RoundTrip) {
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 256; ++i) bytes.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(from_hex(to_hex(bytes)), bytes);
}

TEST(Hex, DecodeRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), InvalidArgument);
}

TEST(Hex, DecodeRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), InvalidArgument);
  EXPECT_THROW(from_hex("0g"), InvalidArgument);
}

TEST(Hex, FixedSizeDecode) {
  const auto a = from_hex_fixed<4>("deadbeef");
  EXPECT_EQ(a[0], 0xde);
  EXPECT_EQ(a[3], 0xef);
  EXPECT_THROW(from_hex_fixed<3>("deadbeef"), InvalidArgument);
}

}  // namespace
}  // namespace gks
