#include "support/json.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace gks::json {
namespace {

TEST(JsonWriter, NestedDocumentWithCommaManagement) {
  Writer w;
  w.begin_object()
      .key("type").value("job")
      .key("count").value(3)
      .key("rate").value(0.5)
      .key("done").value(false)
      .key("targets").begin_array().value("aa").value("bb").end_array()
      .key("nested").begin_object().key("x").null().end_object()
      .end_object();
  EXPECT_EQ(w.str(),
            R"({"type":"job","count":3,"rate":0.5,"done":false,)"
            R"("targets":["aa","bb"],"nested":{"x":null}})");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  Writer w;
  w.begin_object().key("k\"ey").value("a\\b\n\t\x01z").end_object();
  EXPECT_EQ(w.str(), "{\"k\\\"ey\":\"a\\\\b\\n\\t\\u0001z\"}");
}

TEST(JsonParse, RoundTripsWriterOutput) {
  Writer w;
  w.begin_object()
      .key("name").value("sweep-1")
      .key("begin").value("340282366920938463463374607431768211455")
      .key("priority").value(-2)
      .key("weight").value(1.5)
      .key("found").begin_array()
      .begin_object().key("digest").value("ab\"cd").end_object()
      .end_array()
      .end_object();
  const Value v = parse(w.str());
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("name").as_string(), "sweep-1");
  // u128 values travel as strings, never as numbers.
  EXPECT_EQ(v.at("begin").as_string(),
            "340282366920938463463374607431768211455");
  EXPECT_EQ(v.at("priority").as_number(), -2);
  EXPECT_EQ(v.at("weight").as_number(), 1.5);
  ASSERT_EQ(v.at("found").as_array().size(), 1u);
  EXPECT_EQ(v.at("found").as_array()[0].at("digest").as_string(), "ab\"cd");
}

TEST(JsonParse, AcceptsWhitespaceAndLiterals) {
  const Value v = parse("  { \"a\" : [ true , false , null , 1e3 ] }\n");
  const auto& arr = v.at("a").as_array();
  ASSERT_EQ(arr.size(), 4u);
  EXPECT_TRUE(arr[0].as_bool());
  EXPECT_FALSE(arr[1].as_bool());
  EXPECT_EQ(arr[2].type(), Value::Type::kNull);
  EXPECT_EQ(arr[3].as_number(), 1000.0);
}

TEST(JsonParse, DecodesEscapes) {
  const Value v = parse(R"({"s":"a\"b\\c\ndAé"})");
  EXPECT_EQ(v.at("s").as_string(), "a\"b\\c\ndA\xc3\xa9");
}

TEST(JsonParse, FindAndDefaults) {
  const Value v = parse(R"({"a":"x","n":2})");
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(v.string_or("a", "d"), "x");
  EXPECT_EQ(v.string_or("missing", "d"), "d");
  EXPECT_EQ(v.number_or("n", 9), 2);
  EXPECT_EQ(v.number_or("missing", 9), 9);
  EXPECT_THROW(v.at("missing"), InvalidArgument);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), InvalidArgument);
  EXPECT_THROW(parse("{"), InvalidArgument);
  EXPECT_THROW(parse("{\"a\":}"), InvalidArgument);
  EXPECT_THROW(parse("[1,]"), InvalidArgument);
  EXPECT_THROW(parse("\"unterminated"), InvalidArgument);
  EXPECT_THROW(parse("tru"), InvalidArgument);
  EXPECT_THROW(parse("{} garbage"), InvalidArgument);
  EXPECT_THROW(parse("nan"), InvalidArgument);
}

TEST(JsonParse, WrongTypeAccessThrows) {
  const Value v = parse(R"({"a":1})");
  EXPECT_THROW(v.at("a").as_string(), InvalidArgument);
  EXPECT_THROW(v.at("a").as_array(), InvalidArgument);
  EXPECT_THROW(v.as_array(), InvalidArgument);
}

}  // namespace
}  // namespace gks::json
