#include "support/table.h"

#include <gtest/gtest.h>

namespace gks {
namespace {

TEST(TablePrinter, AlignsColumnsToWidestCell) {
  TablePrinter t;
  t.header({"name", "x"});
  t.row({"a", "10"});
  t.row({"longer", "7"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| name   | x  |"), std::string::npos) << s;
  EXPECT_NE(s.find("| longer | 7  |"), std::string::npos) << s;
}

TEST(TablePrinter, BodyOnlyTableHasNoRule) {
  TablePrinter t;
  t.row({"a", "b"});
  EXPECT_EQ(t.str().find('-'), std::string::npos);
}

TEST(TablePrinter, ShortRowsArePadded) {
  TablePrinter t;
  t.header({"a", "b", "c"});
  t.row({"1"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| 1 |   |   |"), std::string::npos) << s;
}

TEST(TablePrinter, NumTrimsTrailingZeros) {
  EXPECT_EQ(TablePrinter::num(1851.0), "1851");
  EXPECT_EQ(TablePrinter::num(962.7), "962.7");
  EXPECT_EQ(TablePrinter::num(0.852, 3), "0.852");
  EXPECT_EQ(TablePrinter::num(0.8999, 3), "0.9");
}

}  // namespace
}  // namespace gks
