#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/error.h"

namespace gks {
namespace {

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ShutdownWithTasksPendingCompletesEveryFuture) {
  // Service teardown path: the pool is destroyed while the queue is
  // still deep and workers are mid-task. Every future obtained before
  // shutdown must still become ready (the destructor drains rather
  // than drops), and no join/notify race may lose a task.
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i) {
      futures.push_back(pool.submit([&ran, i] {
        if (i % 7 == 0) std::this_thread::yield();
        ran.fetch_add(1);
      }));
    }
    // Destructor runs here with most of the queue still pending.
  }
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    f.get();
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, SubmitDuringShutdownThrowsInsteadOfHanging) {
  // Once shutdown has begun, workers exit as soon as the queue drains;
  // a late submit could enqueue a task nobody will ever run and its
  // future would never become ready. The pool fails loudly instead.
  // The resubmission is attempted from inside a worker task while the
  // destructor is blocked joining — exactly the window where the task
  // would otherwise be dropped.
  std::atomic<bool> threw{false};
  std::future<void> task;
  {
    auto pool = std::make_unique<ThreadPool>(1);
    ThreadPool* raw = pool.get();
    std::promise<void> entered;
    task = pool->submit([raw, &entered, &threw] {
      entered.set_value();
      // Give the destructor time to set the stop flag and start joining.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      try {
        raw->submit([] {});
      } catch (const InvalidArgument&) {
        threw = true;
      }
    });
    entered.get_future().get();
    pool.reset();  // joins; the task resubmits while stop is set
  }
  task.get();
  EXPECT_TRUE(threw.load());
}

TEST(ThreadPool, ParallelChunksCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_chunks(1000, 7,
                       [&hits](std::size_t, std::uint64_t begin,
                               std::uint64_t end) {
                         for (std::uint64_t i = begin; i < end; ++i) {
                           hits[i].fetch_add(1);
                         }
                       });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelChunksWorkerIdsAreDense) {
  ThreadPool pool(3);
  std::atomic<int> bad{0};
  // 2 chunks over 3 workers: worker ids must stay below
  // min(size, n_chunks).
  pool.parallel_chunks(20, 10,
                       [&bad](std::size_t worker, std::uint64_t,
                              std::uint64_t) {
                         if (worker >= 2) bad.fetch_add(1);
                       });
  EXPECT_EQ(bad.load(), 0);
}

TEST(ThreadPool, ParallelChunksHandlesEdgeShapes) {
  ThreadPool pool(2);
  // n == 0: no calls.
  pool.parallel_chunks(0, 8, [](std::size_t, std::uint64_t, std::uint64_t) {
    FAIL() << "no chunks expected";
  });
  // chunk larger than n: one call covering everything.
  std::atomic<int> calls{0};
  pool.parallel_chunks(5, 100,
                       [&calls](std::size_t, std::uint64_t begin,
                                std::uint64_t end) {
                         calls.fetch_add(1);
                         EXPECT_EQ(begin, 0u);
                         EXPECT_EQ(end, 5u);
                       });
  EXPECT_EQ(calls.load(), 1);
  // chunk == 0 is clamped to 1.
  std::atomic<int> covered{0};
  pool.parallel_chunks(3, 0,
                       [&covered](std::size_t, std::uint64_t begin,
                                  std::uint64_t end) {
                         covered.fetch_add(static_cast<int>(end - begin));
                       });
  EXPECT_EQ(covered.load(), 3);
}

TEST(ThreadPool, ParallelChunksPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_chunks(100, 10,
                           [](std::size_t, std::uint64_t begin,
                              std::uint64_t) {
                             if (begin == 50) throw std::runtime_error("x");
                           }),
      std::runtime_error);
}

TEST(ThreadPool, SingleThreadPoolIsSequentialAndComplete) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> expected(20);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace gks
