#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace gks {
namespace {

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SingleThreadPoolIsSequentialAndComplete) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> expected(20);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace gks
