#include "support/uint128.h"

#include <gtest/gtest.h>

#include "support/error.h"

#include <cstdint>

namespace gks {
namespace {

TEST(U128, DefaultIsZero) {
  EXPECT_EQ(u128().to_string(), "0");
  EXPECT_EQ(u128(), u128(0));
}

TEST(U128, SmallArithmetic) {
  EXPECT_EQ(u128(2) + u128(3), u128(5));
  EXPECT_EQ(u128(7) - u128(5), u128(2));
  EXPECT_EQ(u128(6) * u128(7), u128(42));
  EXPECT_EQ(u128(42) / u128(5), u128(8));
  EXPECT_EQ(u128(42) % u128(5), u128(2));
}

TEST(U128, CarriesAcross64BitBoundary) {
  const u128 big(~std::uint64_t{0});
  const u128 sum = big + u128(1);
  EXPECT_EQ(sum.high64(), 1u);
  EXPECT_EQ(sum.low64(), 0u);
  EXPECT_EQ(sum - u128(1), big);
}

TEST(U128, ToStringRoundTripsThroughParse) {
  const u128 values[] = {u128(0), u128(1), u128(12345),
                         u128(~std::uint64_t{0}),
                         u128(0x1234567890abcdefULL, 0xfedcba0987654321ULL),
                         u128::max()};
  for (const u128& v : values) {
    EXPECT_EQ(u128::parse(v.to_string()), v) << v.to_string();
  }
}

TEST(U128, KnownLargeDecimal) {
  // 2^64 = 18446744073709551616
  EXPECT_EQ(u128(1, 0).to_string(), "18446744073709551616");
  // 2^127
  EXPECT_EQ((u128(1) << 127).to_string(),
            "170141183460469231731687303715884105728");
}

TEST(U128, ParseRejectsGarbage) {
  EXPECT_THROW(u128::parse(""), InvalidArgument);
  EXPECT_THROW(u128::parse("12x4"), InvalidArgument);
  EXPECT_THROW(u128::parse("-5"), InvalidArgument);
}

TEST(U128, ParseRejectsOverflow) {
  // 2^128 = 340282366920938463463374607431768211456
  EXPECT_THROW(u128::parse("340282366920938463463374607431768211456"),
               InvalidArgument);
  EXPECT_EQ(u128::parse("340282366920938463463374607431768211455"),
            u128::max());
}

TEST(U128, ToU64ChecksRange) {
  EXPECT_EQ(u128(42).to_u64(), 42u);
  EXPECT_THROW(u128(1, 0).to_u64(), InvalidArgument);
}

TEST(U128, ToDoubleApproximatesLargeValues) {
  EXPECT_DOUBLE_EQ(u128(1000).to_double(), 1000.0);
  EXPECT_NEAR(u128(1, 0).to_double(), 1.8446744073709552e19, 1e5);
}

TEST(U128, ComparisonOperators) {
  EXPECT_LT(u128(1), u128(2));
  EXPECT_LT(u128(~std::uint64_t{0}), u128(1, 0));
  EXPECT_GE(u128::max(), u128(0, ~std::uint64_t{0}));
  EXPECT_NE(u128(1, 0), u128(0, 1));
}

TEST(U128, ShiftOperators) {
  EXPECT_EQ(u128(1) << 64, u128(1, 0));
  EXPECT_EQ(u128(1, 0) >> 64, u128(1));
}

TEST(U128, IncrementDecrement) {
  u128 v(41);
  EXPECT_EQ(++v, u128(42));
  EXPECT_EQ(v++, u128(42));
  EXPECT_EQ(v, u128(43));
  EXPECT_EQ(--v, u128(42));
}

TEST(U128, SaturatingAddClampsAtMax) {
  EXPECT_EQ(u128::saturating_add(u128(1), u128(2)), u128(3));
  EXPECT_EQ(u128::saturating_add(u128::max(), u128(1)), u128::max());
  EXPECT_EQ(u128::saturating_add(u128::max(), u128::max()), u128::max());
}

TEST(U128, CheckedMulDetectsOverflow) {
  EXPECT_EQ(u128::checked_mul(u128(1) << 64, u128(3)), u128(3) << 64);
  EXPECT_THROW(u128::checked_mul(u128(1) << 64, u128(1) << 64), InternalError);
}

TEST(U128, CheckedPowMatchesRepeatedMultiplication) {
  EXPECT_EQ(u128::checked_pow(u128(62), 0), u128(1));
  EXPECT_EQ(u128::checked_pow(u128(62), 1), u128(62));
  EXPECT_EQ(u128::checked_pow(u128(2), 100), u128(1) << 100);
  // 62^8 = 218340105584896, the paper's 8-char alphanumeric class size.
  EXPECT_EQ(u128::checked_pow(u128(62), 8).to_string(), "218340105584896");
  EXPECT_THROW(u128::checked_pow(u128(62), 30), InternalError);
}

}  // namespace
}  // namespace gks
