// The batch-file format shared by gks-jobs (local and --connect modes)
// and gks-coordd: one job per line, `key=value` tokens separated by
// whitespace, # starts a comment.
//
//   name=audit1 algo=md5 hash=HEX[,HEX...] charset=lower min=1 max=4
//       priority=2 weight=1.5 salt_suffix=pepper cancel_after=2.5
//
// Keys: name (required), hash (required, comma-separated or repeated),
// algo md5|sha1 [md5], charset lower|upper|digits|alpha|alnum|
// printable|custom:S [lower], min/max [1/4], priority [0], weight [1],
// salt_prefix/salt_suffix, cancel_after=SECS (request cancellation
// that long after the run starts), add_after=SECS:HEX[,HEX...] /
// remove_after=SECS:HEX[,HEX...] (live target mutation; repeatable).

#pragma once

#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "service/job.h"
#include "support/error.h"

namespace gks::tools {

struct TimedMutation {
  double at_s = 0;
  bool add = false;  // attach the hexes; false = detach them
  std::vector<std::string> hexes;
};

struct BatchJob {
  service::JobSpec spec;
  std::optional<double> cancel_after;
  std::vector<TimedMutation> mutations;
};

inline keyspace::Charset charset_by_name(const std::string& name) {
  if (name == "lower") return keyspace::Charset::lower();
  if (name == "upper") return keyspace::Charset::upper();
  if (name == "digits") return keyspace::Charset::digits();
  if (name == "alpha") return keyspace::Charset::alpha();
  if (name == "alnum") return keyspace::Charset::alphanumeric();
  if (name == "printable") return keyspace::Charset::printable();
  if (name.rfind("custom:", 0) == 0) {
    return keyspace::Charset(name.substr(7));
  }
  throw InvalidArgument("unknown charset: " + name);
}

inline std::vector<std::string> split_hashes(const std::string& list) {
  std::vector<std::string> hexes;
  std::stringstream ss(list);
  std::string hex;
  while (std::getline(ss, hex, ',')) {
    if (!hex.empty()) hexes.push_back(hex);
  }
  return hexes;
}

inline TimedMutation parse_mutation(bool add, const std::string& value,
                                    std::size_t line_no) {
  const auto colon = value.find(':');
  GKS_REQUIRE(colon != std::string::npos && colon > 0,
              "batch line " + std::to_string(line_no) +
                  ": expected SECS:HEX[,HEX...], got '" + value + "'");
  TimedMutation m;
  m.at_s = std::stod(value.substr(0, colon));
  m.add = add;
  m.hexes = split_hashes(value.substr(colon + 1));
  GKS_REQUIRE(!m.hexes.empty(), "batch line " + std::to_string(line_no) +
                                    ": mutation lists no digests");
  return m;
}

inline BatchJob parse_batch_line(const std::string& line,
                                 std::size_t line_no) {
  BatchJob job;
  job.spec.request.min_length = 1;
  job.spec.request.max_length = 4;
  job.spec.request.charset = keyspace::Charset::lower();
  std::stringstream ss(line);
  std::string token;
  while (ss >> token) {
    const auto eq = token.find('=');
    GKS_REQUIRE(eq != std::string::npos && eq > 0,
                "batch line " + std::to_string(line_no) +
                    ": expected key=value, got '" + token + "'");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "name") {
      job.spec.name = value;
    } else if (key == "algo") {
      if (value == "md5") {
        job.spec.request.algorithm = hash::Algorithm::kMd5;
      } else if (value == "sha1") {
        job.spec.request.algorithm = hash::Algorithm::kSha1;
      } else {
        throw InvalidArgument("batch line " + std::to_string(line_no) +
                              ": unsupported algo '" + value + "'");
      }
    } else if (key == "hash") {
      for (std::string& hex : split_hashes(value)) {
        job.spec.request.target_hexes.push_back(std::move(hex));
      }
    } else if (key == "charset") {
      job.spec.request.charset = charset_by_name(value);
    } else if (key == "min") {
      job.spec.request.min_length = static_cast<unsigned>(std::stoul(value));
    } else if (key == "max") {
      job.spec.request.max_length = static_cast<unsigned>(std::stoul(value));
    } else if (key == "priority") {
      job.spec.priority = std::stoi(value);
    } else if (key == "weight") {
      job.spec.weight = std::stod(value);
    } else if (key == "salt_prefix") {
      job.spec.request.salt = {hash::SaltPosition::kPrefix, value};
    } else if (key == "salt_suffix") {
      job.spec.request.salt = {hash::SaltPosition::kSuffix, value};
    } else if (key == "cancel_after") {
      job.cancel_after = std::stod(value);
    } else if (key == "add_after") {
      job.mutations.push_back(parse_mutation(true, value, line_no));
    } else if (key == "remove_after") {
      job.mutations.push_back(parse_mutation(false, value, line_no));
    } else {
      throw InvalidArgument("batch line " + std::to_string(line_no) +
                            ": unknown key '" + key + "'");
    }
  }
  GKS_REQUIRE(!job.spec.name.empty(),
              "batch line " + std::to_string(line_no) + ": missing name=");
  GKS_REQUIRE(!job.spec.request.target_hexes.empty(),
              "batch line " + std::to_string(line_no) + ": missing hash=");
  return job;
}

inline std::vector<BatchJob> parse_batch(const std::string& path) {
  std::ifstream in(path);
  GKS_REQUIRE(in.is_open(), "cannot open batch file: " + path);
  std::vector<BatchJob> jobs;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash_pos = line.find('#');
    if (hash_pos != std::string::npos) line.erase(hash_pos);
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    jobs.push_back(parse_batch_line(line, line_no));
  }
  GKS_REQUIRE(!jobs.empty(), "batch file has no jobs: " + path);
  return jobs;
}

}  // namespace gks::tools
