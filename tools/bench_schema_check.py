#!/usr/bin/env python3
"""Structural diff of two bench recordings (see bench/bench_record.h).

Usage: bench_schema_check.py REFERENCE.json FRESH.json

Compares the *shape* of the two documents — key sets and value types,
recursively — not the measured values, which legitimately differ from
run to run and host to host. Lists collapse to the shape of their
entries (every entry of both lists must share the reference shape, so
a bench that stops emitting a field in later entries is caught too).
Numeric int-vs-float differences are ignored; bool/str/number/object/
list mismatches are not.

Exit status: 0 when the shapes agree, 1 on drift (differences listed
on stderr), 2 on unreadable input.
"""

import json
import sys


def type_name(value):
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, dict):
        return "object"
    if isinstance(value, list):
        return "list"
    if value is None:
        return "null"
    return type(value).__name__


def diff_shape(ref, new, path, problems):
    ref_type, new_type = type_name(ref), type_name(new)
    if ref_type != new_type:
        problems.append(f"{path}: type changed: {ref_type} -> {new_type}")
        return
    if ref_type == "object":
        for key in ref:
            if key not in new:
                problems.append(f"{path}.{key}: key missing")
            else:
                diff_shape(ref[key], new[key], f"{path}.{key}", problems)
        for key in new:
            if key not in ref:
                problems.append(f"{path}.{key}: unexpected new key")
    elif ref_type == "list":
        if ref and not new:
            problems.append(f"{path}: list went empty")
        elif ref:
            # Every entry of both lists must match the reference
            # entry shape; indices beyond the reference length are
            # checked against its first entry.
            for i, entry in enumerate(new):
                template = ref[i] if i < len(ref) else ref[0]
                diff_shape(template, entry, f"{path}[{i}]", problems)


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    docs = []
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                docs.append(json.load(f))
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: cannot read {path}: {e}", file=sys.stderr)
            return 2
    problems = []
    diff_shape(docs[0], docs[1], "$", problems)
    if problems:
        print(f"schema drift between {argv[1]} and {argv[2]}:",
              file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"schema ok: {argv[2]} matches {argv[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
