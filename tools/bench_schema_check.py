#!/usr/bin/env python3
"""Structural diff of two bench recordings (see bench/bench_record.h).

Usage: bench_schema_check.py REFERENCE.json FRESH.json
       bench_schema_check.py --metrics DUMP.json [--min-families N]

Compares the *shape* of the two documents — key sets and value types,
recursively — not the measured values, which legitimately differ from
run to run and host to host. Lists collapse to the shape of their
entries (every entry of both lists must share the reference shape, so
a bench that stops emitting a field in later entries is caught too).
Numeric int-vs-float differences are ignored; bool/str/number/object/
list mismatches are not.

--metrics validates a cluster telemetry dump instead (the
`metrics_resp` document written by `gks-coordd --metrics-dump` or
served by the `metrics` verb): every metric entry must be a well-formed
counter/gauge/histogram (counter values and histogram bucket counts as
decimal strings — the u128 convention — bucket indices in [0, 64)),
worker rows must carry name/age_s/metrics, and --min-families enforces
a floor on the distinct metric names in the coordinator snapshot.

Exit status: 0 when the shapes agree, 1 on drift (differences listed
on stderr), 2 on unreadable input.
"""

import json
import sys


def type_name(value):
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, dict):
        return "object"
    if isinstance(value, list):
        return "list"
    if value is None:
        return "null"
    return type(value).__name__


def diff_shape(ref, new, path, problems):
    ref_type, new_type = type_name(ref), type_name(new)
    if ref_type != new_type:
        problems.append(f"{path}: type changed: {ref_type} -> {new_type}")
        return
    if ref_type == "object":
        for key in ref:
            if key not in new:
                problems.append(f"{path}.{key}: key missing")
            else:
                diff_shape(ref[key], new[key], f"{path}.{key}", problems)
        for key in new:
            if key not in ref:
                problems.append(f"{path}.{key}: unexpected new key")
    elif ref_type == "list":
        if ref and not new:
            problems.append(f"{path}: list went empty")
        elif ref:
            # Every entry of both lists must match the reference
            # entry shape; indices beyond the reference length are
            # checked against its first entry.
            for i, entry in enumerate(new):
                template = ref[i] if i < len(ref) else ref[0]
                diff_shape(template, entry, f"{path}[{i}]", problems)


def check_metric(name, value, where, problems):
    if not isinstance(value, dict):
        problems.append(f"{where}.{name}: metric must be an object")
        return
    kind = value.get("type")
    if kind == "counter":
        v = value.get("value")
        if not (isinstance(v, str) and v.isdigit()):
            problems.append(
                f"{where}.{name}: counter value must be a decimal string")
    elif kind == "gauge":
        if not isinstance(value.get("value"), (int, float)) or isinstance(
                value.get("value"), bool):
            problems.append(f"{where}.{name}: gauge value must be a number")
    elif kind == "histogram":
        if not isinstance(value.get("sum"), (int, float)):
            problems.append(f"{where}.{name}: histogram sum must be a number")
        buckets = value.get("buckets")
        if not isinstance(buckets, dict):
            problems.append(
                f"{where}.{name}: histogram buckets must be an object")
            return
        for idx, count in buckets.items():
            if not (idx.isdigit() and 0 <= int(idx) < 64):
                problems.append(
                    f"{where}.{name}: bucket index '{idx}' out of [0, 64)")
            if not (isinstance(count, str) and count.isdigit()):
                problems.append(
                    f"{where}.{name}: bucket count must be a decimal string")
    else:
        problems.append(f"{where}.{name}: unknown metric type '{kind}'")


def check_snapshot(snap, where, problems):
    if not isinstance(snap, dict):
        problems.append(f"{where}: snapshot must be an object")
        return
    for name, value in snap.items():
        check_metric(name, value, where, problems)


def check_metrics_dump(doc, min_families):
    problems = []
    if doc.get("type") != "metrics_resp":
        problems.append("$.type: expected 'metrics_resp'")
    check_snapshot(doc.get("coordinator"), "$.coordinator", problems)
    workers = doc.get("workers", [])
    if not isinstance(workers, list):
        problems.append("$.workers: must be a list")
        workers = []
    for i, row in enumerate(workers):
        where = f"$.workers[{i}]"
        if not isinstance(row, dict):
            problems.append(f"{where}: must be an object")
            continue
        if not isinstance(row.get("name"), str) or not row.get("name"):
            problems.append(f"{where}.name: missing worker name")
        if not isinstance(row.get("age_s"), (int, float)):
            problems.append(f"{where}.age_s: must be a number")
        check_snapshot(row.get("metrics"), f"{where}.metrics", problems)
    families = len(doc.get("coordinator", {})) if isinstance(
        doc.get("coordinator"), dict) else 0
    if families < min_families:
        problems.append(
            f"$.coordinator: {families} metric families, "
            f"expected at least {min_families}")
    return problems, families, len(workers)


def metrics_main(argv):
    min_families = 0
    paths = []
    i = 0
    while i < len(argv):
        if argv[i] == "--min-families":
            if i + 1 >= len(argv):
                print("error: --min-families needs a value", file=sys.stderr)
                return 2
            min_families = int(argv[i + 1])
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if len(paths) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(paths[0], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {paths[0]}: {e}", file=sys.stderr)
        return 2
    problems, families, workers = check_metrics_dump(doc, min_families)
    if problems:
        print(f"invalid metrics dump {paths[0]}:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"metrics dump ok: {paths[0]} "
          f"({families} coordinator families, {workers} worker rows)")
    return 0


def main(argv):
    if len(argv) >= 2 and argv[1] == "--metrics":
        return metrics_main(argv[2:])
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    docs = []
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                docs.append(json.load(f))
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: cannot read {path}: {e}", file=sys.stderr)
            return 2
    problems = []
    diff_shape(docs[0], docs[1], "$", problems)
    if problems:
        print(f"schema drift between {argv[1]} and {argv[2]}:",
              file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"schema ok: {argv[2]} matches {argv[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
