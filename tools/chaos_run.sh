#!/usr/bin/env bash
# Runs the chaos suite (ctest label "chaos": seeded fault-injection
# matrix over the distributed tier) and, on failure, prints the seed of
# every chaos case that ran so the weather can be replayed exactly:
#
#   GKS_CHAOS_SEED=<seed> tools/chaos_run.sh <build-dir>
#
# re-runs the whole matrix under that one seed (each test logs
# `[chaos] case=NAME seed=N` to stderr before it starts; the fault
# schedule is a pure function of the seed and connection order).
#
# Usage: chaos_run.sh [build-dir] [seed]
#   build-dir  cmake build tree holding the ctest registry   [./build]
#   seed       overrides GKS_CHAOS_SEED for this run
set -u

BUILD=${1:-build}
[ -n "${2:-}" ] && export GKS_CHAOS_SEED=$2

[ -d "$BUILD" ] || {
  echo "chaos_run: no build dir at '$BUILD' (configure with cmake first)" >&2
  exit 2
}

LOG=$(mktemp)
trap 'rm -f "$LOG"' EXIT

if [ -n "${GKS_CHAOS_SEED:-}" ]; then
  echo "chaos_run: GKS_CHAOS_SEED=$GKS_CHAOS_SEED (matrix seeds overridden)"
fi

ctest --test-dir "$BUILD" -L chaos --output-on-failure 2>&1 | tee "$LOG"
STATUS=${PIPESTATUS[0]}

# ctest exits 0 when a label matches nothing — a renamed label or a
# broken registry would turn the whole chaos gate vacuously green.
# An empty matrix is a failure of the harness, not a pass.
if grep -q 'No tests were found' "$LOG"; then
  echo "chaos_run: FAIL — label 'chaos' matched no tests" >&2
  exit 3
fi

# The same seed reaches gks-coordd's registry as the gks_chaos_seed
# gauge (via the GKS_CHAOS_SEED environment), so a --metrics-dump from
# a chaos-driven daemon run names its own replay recipe.

if [ "$STATUS" -ne 0 ]; then
  echo "" >&2
  echo "chaos_run: FAIL — seeds of the cases that ran:" >&2
  # The suite prints one `[chaos] case=... seed=...` line per case;
  # ctest only echoes output for *failing* tests, so these are exactly
  # the seeds that need replaying.
  grep -o '\[chaos\] case=[^ ]* seed=[0-9]*' "$LOG" | sort -u | \
    sed 's/^/  /' >&2
  echo "chaos_run: replay with GKS_CHAOS_SEED=<seed> $0 $BUILD" >&2
fi
exit "$STATUS"
