#!/usr/bin/env bash
# Multi-process smoke test of the distributed tier: one gks-coordd and
# two gks-workerd processes over localhost TCP, with one worker
# SIGKILLed mid-run. Passes when the coordinator exits 0 (every target
# recovered) and the journal holds the planted key's found record —
# i.e. lease expiry re-dispatched the dead worker's interval and the
# survivor finished the sweep.
#
# Usage: dist_smoke.sh <tools-bin-dir> [workdir]
set -u

BIN=${1:?usage: dist_smoke.sh <tools-bin-dir> [workdir]}
WORK=${2:-$(mktemp -d)}
mkdir -p "$WORK"
cd "$WORK"

fail() {
  echo "dist_smoke: FAIL: $*" >&2
  [ -s coordd.err ] && sed 's/^/  coordd: /' coordd.err >&2
  exit 1
}

cleanup() {
  kill -9 "${CPID:-0}" "${W1:-0}" "${W2:-0}" 2>/dev/null
  wait 2>/dev/null
}
trap cleanup EXIT

# md5("wzzzz"), lower-case length-5 keyspace: deep enough in the
# enumeration that the sweep is still running when the kill lands.
cat > batch.txt <<'EOF'
name=smoke algo=md5 hash=a53d1d57496c7c3b3c5c358cd3f2d768 charset=lower min=5 max=5
EOF

rm -f journal.jsonl coordd.out coordd.err
"$BIN/gks-coordd" --batch batch.txt --listen 127.0.0.1:0 \
  --journal journal.jsonl --local-workers 0 --lease 1.0 --heartbeat 0.25 \
  --exit-when-done --quiet > coordd.out 2> coordd.err &
CPID=$!

ADDR=
for _ in $(seq 100); do
  ADDR=$(sed -n 's/^listening on //p' coordd.out)
  [ -n "$ADDR" ] && break
  kill -0 "$CPID" 2>/dev/null || fail "coordinator died during startup"
  sleep 0.1
done
[ -n "$ADDR" ] || fail "coordinator never announced its address"

"$BIN/gks-workerd" --connect "$ADDR" --name victim --threads 2 \
  > victim.out 2>&1 &
W1=$!
"$BIN/gks-workerd" --connect "$ADDR" --name survivor --threads 2 \
  > survivor.out 2>&1 &
W2=$!

# Let the victim lease and scan for a moment, then kill it the hard
# way — no BYE, no close: only lease expiry can reclaim its interval.
sleep 0.4
kill -9 "$W1" 2>/dev/null || fail "victim already gone before the kill"

DEADLINE=$((SECONDS + 120))
while kill -0 "$CPID" 2>/dev/null; do
  [ "$SECONDS" -lt "$DEADLINE" ] || fail "coordinator still running after 120s"
  sleep 0.2
done
wait "$CPID"
CEXIT=$?
[ "$CEXIT" -eq 0 ] || fail "coordinator exited $CEXIT (want 0: all found)"

grep -q '"type":"found".*"key":"wzzzz"' journal.jsonl \
  || fail "journal has no found record for the planted key"

kill "$W2" 2>/dev/null
echo "dist_smoke: PASS (coordinator exit 0, planted key journaled)"
exit 0
