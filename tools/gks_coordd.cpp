// gks-coordd: the distributed job coordinator daemon.
//
//   gks-coordd [options]
//
// Owns the JobManager (scheduler + checkpoint journal) and serves the
// dispatch protocol (docs/distributed.md) on a TCP listen address.
// Workers (gks-workerd) lease interval quanta and retire them; control
// clients (gks-jobs --connect) submit batches and watch progress.
//
// Options:
//   --listen ADDR       host:port to bind; port 0 picks one
//                       [127.0.0.1:0]
//   --batch FILE        submit this batch at startup (batch_format.h;
//                       cancel_after/add_after/remove_after ignored)
//   --journal FILE      checkpoint journal (JSON lines)
//   --resume            reload --journal before serving
//   --journal-batch N   group-commit: flush every N records     [1]
//   --journal-delay S   ... or S seconds after the oldest unflushed
//                       record, whichever comes first            [0.05]
//   --journal-rotate N  rotate the journal into numbered segments
//                       once the active file exceeds N bytes
//                       (0 = never)                              [0]
//   --local-workers N   also scan locally with N threads         [0]
//   --lease S           lease lifetime                           [3.0]
//   --heartbeat S       heartbeat cadence workers are told       [0.5]
//   --metrics-listen A  serve the cluster telemetry as Prometheus
//                       text exposition over HTTP on host:port
//                       (GET /metrics; port 0 picks one)
//   --metrics-dump F    at shutdown, write the cluster telemetry
//                       (metrics_resp JSON) to file F
//   --exit-when-done    exit once every job is terminal (needs at
//                       least one job, from --batch or --resume)
//   --quiet             no startup banner beyond the listen line
//
// Prints exactly one line `listening on HOST:PORT` to stdout once the
// listener is bound (scripts parse it to learn an ephemeral port), and
// with --metrics-listen one further line `metrics on HOST:PORT`.
//
// When GKS_CHAOS_SEED is set in the environment (chaos_run.sh exports
// it), its value lands in the registry as the gks_chaos_seed gauge, so
// a metrics dump from a failed chaos run names the seed that replays
// it.
//
// Exit status with --exit-when-done: 0 when every job is done with all
// targets recovered, 1 otherwise. Without it, runs until SIGINT/
// SIGTERM, then exits 0.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "batch_format.h"
#include "dist/coordinator.h"
#include "dist/tcp_transport.h"
#include "obs/metrics.h"
#include "obs/metrics_http.h"
#include "service/job_manager.h"
#include "support/error.h"

namespace {

using namespace gks;

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_release); }

struct Options {
  std::string listen = "127.0.0.1:0";
  std::string batch;
  std::string journal;
  bool resume = false;
  std::size_t journal_batch = 1;
  double journal_delay = 0.05;
  std::size_t journal_rotate = 0;
  std::size_t local_workers = 0;
  double lease_s = 3.0;
  double heartbeat_s = 0.5;
  std::string metrics_listen;
  std::string metrics_dump;
  bool exit_when_done = false;
  bool quiet = false;
};

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      stderr,
      "usage: %s [--listen HOST:PORT] [--batch FILE] [--journal FILE] "
      "[--resume] [--journal-batch N] [--journal-delay S] "
      "[--journal-rotate N] "
      "[--local-workers N] [--lease S] [--heartbeat S] "
      "[--metrics-listen HOST:PORT] [--metrics-dump FILE] "
      "[--exit-when-done] [--quiet]\n",
      argv0);
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], "missing option value");
      return argv[++i];
    };
    if (arg == "--listen") {
      opt.listen = need_value();
    } else if (arg == "--batch") {
      opt.batch = need_value();
    } else if (arg == "--journal") {
      opt.journal = need_value();
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (arg == "--journal-batch") {
      opt.journal_batch = std::stoul(need_value());
    } else if (arg == "--journal-delay") {
      opt.journal_delay = std::stod(need_value());
    } else if (arg == "--journal-rotate") {
      opt.journal_rotate = std::stoul(need_value());
    } else if (arg == "--local-workers") {
      opt.local_workers = std::stoul(need_value());
    } else if (arg == "--lease") {
      opt.lease_s = std::stod(need_value());
    } else if (arg == "--heartbeat") {
      opt.heartbeat_s = std::stod(need_value());
    } else if (arg == "--metrics-listen") {
      opt.metrics_listen = need_value();
    } else if (arg == "--metrics-dump") {
      opt.metrics_dump = need_value();
    } else if (arg == "--exit-when-done") {
      opt.exit_when_done = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      usage(argv[0], ("unknown option: " + arg).c_str());
    }
  }
  if (opt.resume && opt.journal.empty()) {
    usage(argv[0], "--resume needs --journal");
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse_options(argc, argv);

    service::JobServiceConfig config;
    config.journal_path = opt.journal;
    config.journal_flush = {opt.journal_batch, opt.journal_delay};
    config.journal_rotate_bytes = opt.journal_rotate;
    config.local_scan = opt.local_workers > 0;
    config.workers = opt.local_workers;
    service::JobManager manager(config);

    if (opt.resume) {
      service::JobStore::LoadReport report;
      const std::size_t n = manager.resume_from(opt.journal, &report);
      if (!opt.quiet) {
        std::fprintf(stderr, "resumed %zu unfinished job(s) from %s\n", n,
                     opt.journal.c_str());
      }
      // Corrupt records are skipped, never fatal — but an operator
      // must hear about them even under --quiet: each one is coverage
      // that will be silently re-scanned or a mutation that was lost.
      if (report.quarantined > 0) {
        std::fprintf(stderr,
                     "warning: quarantined %zu corrupt journal record(s) "
                     "into %s:\n",
                     report.quarantined, report.quarantine_path.c_str());
        for (const std::string& note : report.notes) {
          std::fprintf(stderr, "  %s\n", note.c_str());
        }
      }
    }
    if (!opt.batch.empty()) {
      for (tools::BatchJob& job : tools::parse_batch(opt.batch)) {
        if (manager.find_job(job.spec.name).has_value()) continue;
        manager.submit(std::move(job.spec));
      }
    }

    // A chaos-harness seed in the environment becomes a gauge, so a
    // metrics dump from a failed run carries its own replay recipe.
    if (const char* seed = std::getenv("GKS_CHAOS_SEED")) {
      obs::Registry::global().gauge("gks_chaos_seed").set(
          std::strtod(seed, nullptr));
    }

    dist::TcpTransport transport;
    dist::CoordinatorConfig coord_config;
    coord_config.lease_s = opt.lease_s;
    coord_config.heartbeat_s = opt.heartbeat_s;
    dist::Coordinator coordinator(manager, transport, coord_config);
    coordinator.start(opt.listen);

    // Declared after the coordinator so it stops first: the renderer
    // dereferences the coordinator on every scrape.
    obs::MetricsHttpServer metrics_server(
        [&coordinator] { return coordinator.prometheus_text(); });
    if (!opt.metrics_listen.empty()) {
      metrics_server.start(opt.metrics_listen);
    }

    std::printf("listening on %s\n", coordinator.address().c_str());
    if (!opt.metrics_listen.empty()) {
      std::printf("metrics on %s\n", metrics_server.address().c_str());
    }
    std::fflush(stdout);

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    int exit_code = 0;
    for (;;) {
      if (g_stop.load(std::memory_order_acquire)) break;
      if (opt.exit_when_done) {
        const std::vector<service::JobSnapshot> snaps =
            manager.snapshot_all();
        bool all_terminal = !snaps.empty();
        bool all_ok = !snaps.empty();
        for (const auto& s : snaps) {
          all_terminal = all_terminal && service::is_terminal(s.state);
          all_ok = all_ok && s.state == service::JobState::kDone &&
                   s.targets_found == s.targets_total;
        }
        if (all_terminal) {
          exit_code = all_ok ? 0 : 1;
          break;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    metrics_server.stop();
    if (!opt.metrics_dump.empty()) {
      // The same JSON the metrics verb returns; worker entries persist
      // past their sessions, so this is the cluster's final word.
      std::ofstream out(opt.metrics_dump);
      if (out) {
        out << dist::encode(coordinator.cluster_metrics()) << "\n";
      } else {
        std::fprintf(stderr, "warning: cannot write metrics dump %s\n",
                     opt.metrics_dump.c_str());
      }
    }
    coordinator.stop();
    if (!opt.quiet) {
      const auto stats = coordinator.stats();
      std::fprintf(stderr,
                   "sessions=%llu leases=%llu retired=%llu found=%llu\n",
                   static_cast<unsigned long long>(stats.sessions_opened),
                   static_cast<unsigned long long>(stats.leases_granted),
                   static_cast<unsigned long long>(stats.leases_retired),
                   static_cast<unsigned long long>(stats.found_reports));
    }
    return exit_code;
  } catch (const gks::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
