// gks-crack: command-line front end to the cracking library.
//
// Modes (mutually exclusive):
//   (default)            brute force over a charset/length range
//   --mask PATTERN       mask attack (?l ?u ?d ?s ?a, literals)
//   --wordlist FILE      dictionary attack (one word per line)
//   --markov FILE        likelihood-ordered fixed-length search, per-
//                        position character order trained on FILE
//                        (uses --charset and --max as the length)
//
// Common options:
//   --algo md5|sha1          hash algorithm            [md5]
//   --hash HEX               target digest (repeatable)
//   --batch FILE             file of digests, one hex per line
//   --charset NAME|custom:S  lower|upper|digits|alpha|alnum|printable
//   --min N / --max N        key length range          [1 / 5]
//   --salt-prefix S / --salt-suffix S
//   --mangle                 dictionary case mangling (as-is/Cap/UPPER)
//   --rules common|FILE      dictionary mangling rules (hashcat-style
//                            subset; FILE = one rule per line)
//   --suffix-mask PATTERN    hybrid: dictionary x mask tail
//   --threads N              worker threads            [hardware]
//   --json                   machine-readable result on stdout (keys,
//                            throughput, intervals scanned)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/generator_crack.h"
#include "core/multi_crack.h"
#include "keyspace/dictionary.h"
#include "keyspace/keyspace_generator.h"
#include "keyspace/markov.h"
#include "keyspace/mask.h"
#include "keyspace/rules.h"
#include "support/error.h"
#include "support/json.h"
#include "support/table.h"

namespace {

using namespace gks;

struct Options {
  hash::Algorithm algorithm = hash::Algorithm::kMd5;
  std::vector<std::string> hashes;
  std::string charset_name = "lower";
  unsigned min_length = 1;
  unsigned max_length = 5;
  hash::SaltSpec salt;
  std::optional<std::string> mask;
  std::optional<std::string> wordlist;
  std::optional<std::string> markov_corpus;
  bool mangle = false;
  std::optional<std::string> rules;
  std::optional<std::string> suffix_mask;
  std::size_t threads = 0;
  bool json = false;
};

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: %s --hash HEX [--hash HEX ...] [options]\n"
               "       %s --batch FILE [options]\n"
               "see the header of tools/gks_crack.cpp for all options\n",
               argv0, argv0);
  std::exit(2);
}

keyspace::Charset charset_by_name(const std::string& name) {
  if (name == "lower") return keyspace::Charset::lower();
  if (name == "upper") return keyspace::Charset::upper();
  if (name == "digits") return keyspace::Charset::digits();
  if (name == "alpha") return keyspace::Charset::alpha();
  if (name == "alnum") return keyspace::Charset::alphanumeric();
  if (name == "printable") return keyspace::Charset::printable();
  if (name.rfind("custom:", 0) == 0) {
    return keyspace::Charset(name.substr(7));
  }
  throw InvalidArgument("unknown charset: " + name);
}

Options parse(int argc, char** argv) {
  Options opt;
  const auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0], "missing option value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--algo") {
      const std::string v = need_value(i);
      if (v == "md5") {
        opt.algorithm = hash::Algorithm::kMd5;
      } else if (v == "sha1") {
        opt.algorithm = hash::Algorithm::kSha1;
      } else {
        usage(argv[0], "unsupported --algo (md5|sha1)");
      }
    } else if (arg == "--hash") {
      opt.hashes.push_back(need_value(i));
    } else if (arg == "--batch") {
      std::ifstream in(need_value(i));
      if (!in) usage(argv[0], "cannot open --batch file");
      std::string line;
      while (std::getline(in, line)) {
        if (!line.empty()) opt.hashes.push_back(line);
      }
    } else if (arg == "--charset") {
      opt.charset_name = need_value(i);
    } else if (arg == "--min") {
      opt.min_length = static_cast<unsigned>(std::stoul(need_value(i)));
    } else if (arg == "--max") {
      opt.max_length = static_cast<unsigned>(std::stoul(need_value(i)));
    } else if (arg == "--salt-prefix") {
      opt.salt = {hash::SaltPosition::kPrefix, need_value(i)};
    } else if (arg == "--salt-suffix") {
      opt.salt = {hash::SaltPosition::kSuffix, need_value(i)};
    } else if (arg == "--mask") {
      opt.mask = need_value(i);
    } else if (arg == "--wordlist") {
      opt.wordlist = need_value(i);
    } else if (arg == "--markov") {
      opt.markov_corpus = need_value(i);
    } else if (arg == "--mangle") {
      opt.mangle = true;
    } else if (arg == "--rules") {
      opt.rules = need_value(i);
    } else if (arg == "--suffix-mask") {
      opt.suffix_mask = need_value(i);
    } else if (arg == "--threads") {
      opt.threads = std::stoul(need_value(i));
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      usage(argv[0], ("unknown option: " + arg).c_str());
    }
  }
  if (opt.hashes.empty()) usage(argv[0], "no target hashes given");
  const int modes = (opt.mask ? 1 : 0) + (opt.wordlist ? 1 : 0) +
                    (opt.markov_corpus ? 1 : 0);
  if (modes > 1) {
    usage(argv[0], "--mask, --wordlist and --markov are mutually exclusive");
  }
  return opt;
}

std::vector<std::string> load_words(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InvalidArgument("cannot open wordlist: " + path);
  std::vector<std::string> words;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) words.push_back(line);
  }
  return words;
}

int report_json(const core::MultiCrackResult& result) {
  json::Writer w;
  w.begin_object()
      .key("cracked").value(static_cast<std::uint64_t>(result.cracked))
      .key("targets_total")
      .value(static_cast<std::uint64_t>(result.targets.size()))
      .key("tested").value(result.tested.to_string())
      .key("intervals").value(result.intervals)
      .key("elapsed_s").value(result.elapsed_s)
      .key("keys_per_s")
      .value(result.elapsed_s > 0
                 ? result.tested.to_double() / result.elapsed_s
                 : 0.0)
      .key("filter_gate_hits").value(result.filter_gate_hits)
      .key("filter_false_positives").value(result.filter_false_positives)
      .key("targets").begin_array();
  for (const auto& t : result.targets) {
    w.begin_object()
        .key("digest").value(t.digest_hex)
        .key("found").value(t.found);
    if (t.found) w.key("key").value(t.key);
    w.end_object();
  }
  w.end_array().end_object();
  std::printf("%s\n", w.str().c_str());
  return result.cracked == result.targets.size() ? 0 : 1;
}

int report(const core::MultiCrackResult& result, bool json) {
  if (json) return report_json(result);
  TablePrinter table;
  table.header({"digest", "verdict", "key"});
  for (const auto& t : result.targets) {
    table.row({t.digest_hex, t.found ? "CRACKED" : "not found",
               t.found ? t.key : "-"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("%zu of %zu recovered; tested %s candidates in %.2f s "
              "(%.2f Mkeys/s)\n",
              result.cracked, result.targets.size(),
              result.tested.to_string().c_str(), result.elapsed_s,
              result.tested.to_double() / result.elapsed_s / 1e6);
  return result.cracked == result.targets.size() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse(argc, argv);

    if (opt.mask) {
      const keyspace::MaskGenerator mask(*opt.mask);
      if (!opt.json) {
        std::printf("mask attack: %s candidates\n",
                    mask.size().to_string().c_str());
      }
      return report(core::crack_generator(mask, opt.algorithm, opt.hashes,
                                          opt.salt, opt.threads),
                    opt.json);
    }

    if (opt.markov_corpus) {
      const keyspace::MarkovOrderedGenerator markov(
          charset_by_name(opt.charset_name), opt.max_length,
          load_words(*opt.markov_corpus));
      if (!opt.json) {
        std::printf("markov-ordered search: %s candidates of length %u, "
                    "likely ones first\n",
                    markov.size().to_string().c_str(), opt.max_length);
      }
      return report(core::crack_generator(markov, opt.algorithm, opt.hashes,
                                          opt.salt, opt.threads),
                    opt.json);
    }

    if (opt.wordlist && opt.rules) {
      const std::vector<std::string> words = load_words(*opt.wordlist);
      const keyspace::RuleSet rules =
          *opt.rules == "common" ? keyspace::RuleSet::common()
                                 : keyspace::RuleSet(load_words(*opt.rules));
      const keyspace::RuledDictionaryGenerator gen(words, rules);
      if (!opt.json) {
        std::printf("rule-based dictionary attack: %s candidates "
                    "(%zu words x %zu rules)\n",
                    gen.size().to_string().c_str(), words.size(),
                    rules.size());
      }
      return report(core::crack_generator(gen, opt.algorithm, opt.hashes,
                                          opt.salt, opt.threads),
                    opt.json);
    }

    if (opt.wordlist) {
      const keyspace::DictionaryGenerator words(
          load_words(*opt.wordlist),
          opt.mangle ? keyspace::DictionaryGenerator::Mangle::kCommonCase
                     : keyspace::DictionaryGenerator::Mangle::kNone);
      if (opt.suffix_mask) {
        const keyspace::MaskGenerator tail(*opt.suffix_mask);
        const keyspace::HybridGenerator hybrid(words, tail);
        if (!opt.json) {
          std::printf("hybrid attack: %s candidates\n",
                      hybrid.size().to_string().c_str());
        }
        return report(core::crack_generator(hybrid, opt.algorithm,
                                            opt.hashes, opt.salt,
                                            opt.threads),
                      opt.json);
      }
      if (!opt.json) {
        std::printf("dictionary attack: %s candidates\n",
                    words.size().to_string().c_str());
      }
      return report(core::crack_generator(words, opt.algorithm, opt.hashes,
                                          opt.salt, opt.threads),
                    opt.json);
    }

    core::MultiCrackRequest request;
    request.algorithm = opt.algorithm;
    request.target_hexes = opt.hashes;
    request.charset = charset_by_name(opt.charset_name);
    request.min_length = opt.min_length;
    request.max_length = opt.max_length;
    request.salt = opt.salt;
    if (!opt.json) {
      std::printf(
          "brute force: %s candidates (charset %zu, lengths %u..%u)\n",
          keyspace::space_size(request.charset.size(), request.min_length,
                               request.max_length)
              .to_string()
              .c_str(),
          request.charset.size(), request.min_length, request.max_length);
    }
    return report(core::multi_crack(request, opt.threads), opt.json);
  } catch (const gks::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
