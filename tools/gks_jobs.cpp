// gks-jobs: multi-tenant batch front end to the job service.
//
//   gks-jobs BATCHFILE [options]
//
// The batch file has one job per line, `key=value` tokens separated by
// whitespace (# starts a comment):
//
//   name=audit1 algo=md5 hash=HEX[,HEX...] charset=lower min=1 max=4
//       priority=2 weight=1.5 salt_suffix=pepper cancel_after=2.5
//   (one line per job; shown wrapped here)
//
// Keys: name (required), hash (required, comma-separated or repeated),
// algo md5|sha1 [md5], charset lower|upper|digits|alpha|alnum|
// printable|custom:S [lower], min/max [1/4], priority [0], weight [1],
// salt_prefix/salt_suffix, cancel_after=SECS (demo hook: request
// cancellation that long after the run starts),
// add_after=SECS:HEX[,HEX...] / remove_after=SECS:HEX[,HEX...]
// (live target mutation: attach/detach the digests that long after the
// run starts, while the sweep keeps going; repeatable).
//
// Options:
//   --workers N        worker threads                  [hardware]
//   --journal FILE     checkpoint journal (JSON lines)
//   --resume           reload FILE first; only unscanned gaps of
//                      unfinished jobs are dispatched again, and batch
//                      entries whose name the journal already knows
//                      are not resubmitted
//   --progress SECS    streamed per-job progress period [1.0]
//   --quiet            no progress stream
//   --json             machine-readable final report on stdout
//
// Exit status: 0 when every job completed with all its targets
// recovered, 1 otherwise (cancelled, failed, or keys not in space).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/job_manager.h"
#include "support/error.h"
#include "support/json.h"
#include "support/table.h"

namespace {

using namespace gks;

struct TimedMutation {
  double at_s = 0;
  bool add = false;  // attach the hexes; false = detach them
  std::vector<std::string> hexes;
};

struct BatchJob {
  service::JobSpec spec;
  std::optional<double> cancel_after;
  std::vector<TimedMutation> mutations;
};

struct Options {
  std::string batch_path;
  std::size_t workers = 0;
  std::string journal;
  bool resume = false;
  double progress_s = 1.0;
  bool quiet = false;
  bool json = false;
};

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: %s BATCHFILE [--workers N] [--journal FILE] "
               "[--resume] [--progress SECS] [--quiet] [--json]\n"
               "see the header of tools/gks_jobs.cpp for the batch format\n",
               argv0);
  std::exit(2);
}

keyspace::Charset charset_by_name(const std::string& name) {
  if (name == "lower") return keyspace::Charset::lower();
  if (name == "upper") return keyspace::Charset::upper();
  if (name == "digits") return keyspace::Charset::digits();
  if (name == "alpha") return keyspace::Charset::alpha();
  if (name == "alnum") return keyspace::Charset::alphanumeric();
  if (name == "printable") return keyspace::Charset::printable();
  if (name.rfind("custom:", 0) == 0) {
    return keyspace::Charset(name.substr(7));
  }
  throw InvalidArgument("unknown charset: " + name);
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], "missing option value");
      return argv[++i];
    };
    if (arg == "--workers") {
      opt.workers = std::stoul(need_value());
    } else if (arg == "--journal") {
      opt.journal = need_value();
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (arg == "--progress") {
      opt.progress_s = std::stod(need_value());
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0], ("unknown option: " + arg).c_str());
    } else if (opt.batch_path.empty()) {
      opt.batch_path = arg;
    } else {
      usage(argv[0], "more than one batch file given");
    }
  }
  if (opt.batch_path.empty()) usage(argv[0], "no batch file given");
  if (opt.resume && opt.journal.empty()) {
    usage(argv[0], "--resume needs --journal");
  }
  return opt;
}

std::vector<std::string> split_hashes(const std::string& list) {
  std::vector<std::string> hexes;
  std::stringstream ss(list);
  std::string hex;
  while (std::getline(ss, hex, ',')) {
    if (!hex.empty()) hexes.push_back(hex);
  }
  return hexes;
}

TimedMutation parse_mutation(bool add, const std::string& value,
                             std::size_t line_no) {
  const auto colon = value.find(':');
  GKS_REQUIRE(colon != std::string::npos && colon > 0,
              "batch line " + std::to_string(line_no) +
                  ": expected SECS:HEX[,HEX...], got '" + value + "'");
  TimedMutation m;
  m.at_s = std::stod(value.substr(0, colon));
  m.add = add;
  m.hexes = split_hashes(value.substr(colon + 1));
  GKS_REQUIRE(!m.hexes.empty(), "batch line " + std::to_string(line_no) +
                                    ": mutation lists no digests");
  return m;
}

BatchJob parse_batch_line(const std::string& line, std::size_t line_no) {
  BatchJob job;
  job.spec.request.min_length = 1;
  job.spec.request.max_length = 4;
  job.spec.request.charset = keyspace::Charset::lower();
  std::stringstream ss(line);
  std::string token;
  while (ss >> token) {
    const auto eq = token.find('=');
    GKS_REQUIRE(eq != std::string::npos && eq > 0,
                "batch line " + std::to_string(line_no) +
                    ": expected key=value, got '" + token + "'");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "name") {
      job.spec.name = value;
    } else if (key == "algo") {
      if (value == "md5") {
        job.spec.request.algorithm = hash::Algorithm::kMd5;
      } else if (value == "sha1") {
        job.spec.request.algorithm = hash::Algorithm::kSha1;
      } else {
        throw InvalidArgument("batch line " + std::to_string(line_no) +
                              ": unsupported algo '" + value + "'");
      }
    } else if (key == "hash") {
      for (std::string& hex : split_hashes(value)) {
        job.spec.request.target_hexes.push_back(std::move(hex));
      }
    } else if (key == "charset") {
      job.spec.request.charset = charset_by_name(value);
    } else if (key == "min") {
      job.spec.request.min_length = static_cast<unsigned>(std::stoul(value));
    } else if (key == "max") {
      job.spec.request.max_length = static_cast<unsigned>(std::stoul(value));
    } else if (key == "priority") {
      job.spec.priority = std::stoi(value);
    } else if (key == "weight") {
      job.spec.weight = std::stod(value);
    } else if (key == "salt_prefix") {
      job.spec.request.salt = {hash::SaltPosition::kPrefix, value};
    } else if (key == "salt_suffix") {
      job.spec.request.salt = {hash::SaltPosition::kSuffix, value};
    } else if (key == "cancel_after") {
      job.cancel_after = std::stod(value);
    } else if (key == "add_after") {
      job.mutations.push_back(parse_mutation(true, value, line_no));
    } else if (key == "remove_after") {
      job.mutations.push_back(parse_mutation(false, value, line_no));
    } else {
      throw InvalidArgument("batch line " + std::to_string(line_no) +
                            ": unknown key '" + key + "'");
    }
  }
  GKS_REQUIRE(!job.spec.name.empty(),
              "batch line " + std::to_string(line_no) + ": missing name=");
  GKS_REQUIRE(!job.spec.request.target_hexes.empty(),
              "batch line " + std::to_string(line_no) + ": missing hash=");
  return job;
}

std::vector<BatchJob> parse_batch(const std::string& path) {
  std::ifstream in(path);
  GKS_REQUIRE(in.is_open(), "cannot open batch file: " + path);
  std::vector<BatchJob> jobs;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash_pos = line.find('#');
    if (hash_pos != std::string::npos) line.erase(hash_pos);
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    jobs.push_back(parse_batch_line(line, line_no));
  }
  GKS_REQUIRE(!jobs.empty(), "batch file has no jobs: " + path);
  return jobs;
}

void print_progress(const std::vector<service::JobSnapshot>& snaps,
                    double t) {
  for (const auto& s : snaps) {
    std::printf("[%6.1fs] %-12s %-9s %5.1f%%  %8.2f Mkeys/s  "
                "%zu/%zu found  eta %.1fs\n",
                t, s.name.c_str(), service::job_state_name(s.state),
                100.0 * s.progress(), s.keys_per_s / 1e6, s.targets_found,
                s.targets_total, s.eta_s);
  }
  std::fflush(stdout);
}

int report(const std::vector<service::JobSnapshot>& snaps, bool json) {
  bool all_ok = true;
  for (const auto& s : snaps) {
    all_ok = all_ok && s.state == service::JobState::kDone &&
             s.targets_found == s.targets_total;
  }
  if (json) {
    json::Writer w;
    w.begin_object().key("ok").value(all_ok).key("jobs").begin_array();
    for (const auto& s : snaps) {
      w.begin_object()
          .key("name").value(s.name)
          .key("state").value(service::job_state_name(s.state))
          .key("space").value(s.space.to_string())
          .key("scanned").value(s.scanned.to_string())
          .key("intervals_issued").value(s.intervals_issued)
          .key("intervals_retired").value(s.intervals_retired)
          .key("targets_total")
          .value(static_cast<std::uint64_t>(s.targets_total))
          .key("targets_found")
          .value(static_cast<std::uint64_t>(s.targets_found))
          .key("keys_per_s").value(s.keys_per_s)
          .key("elapsed_s").value(s.elapsed_s)
          .key("filter_gate_hits").value(s.filter_gate_hits)
          .key("filter_false_positives").value(s.filter_false_positives)
          .key("found").begin_array();
      for (const auto& [digest, key] : s.found) {
        w.begin_object()
            .key("digest").value(digest)
            .key("key").value(key)
            .end_object();
      }
      w.end_array();
      if (!s.error.empty()) w.key("error").value(s.error);
      w.end_object();
    }
    w.end_array().end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    TablePrinter table;
    table.header({"job", "state", "scanned", "found", "keys"});
    for (const auto& s : snaps) {
      std::string keys;
      for (const auto& [digest, key] : s.found) {
        if (!keys.empty()) keys += " ";
        keys += key;
      }
      table.row({s.name, service::job_state_name(s.state),
                 s.scanned.to_string() + "/" + s.space.to_string(),
                 std::to_string(s.targets_found) + "/" +
                     std::to_string(s.targets_total),
                 keys.empty() ? "-" : keys});
    }
    std::printf("%s\n", table.str().c_str());
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse_options(argc, argv);
    std::vector<BatchJob> batch = parse_batch(opt.batch_path);

    service::JobServiceConfig config;
    config.workers = opt.workers;
    config.journal_path = opt.journal;
    service::JobManager manager(config);

    // Names the journal already knows (resumed live, or finished in an
    // earlier run) are not resubmitted.
    std::set<std::string> known;
    if (opt.resume) {
      const std::size_t n = manager.resume_from(opt.journal);
      for (const auto& rec : service::JobStore::load(opt.journal)) {
        known.insert(rec.spec.name);
      }
      if (!opt.quiet && !opt.json) {
        std::printf("resumed %zu unfinished job(s) from %s\n", n,
                    opt.journal.c_str());
      }
    }

    struct Pending {
      service::JobId id;
      double cancel_after;
      bool cancelled = false;
    };
    struct PendingMutation {
      service::JobId id;
      TimedMutation mutation;
      bool fired = false;
    };
    std::vector<Pending> cancels;
    std::vector<PendingMutation> mutations;
    for (BatchJob& job : batch) {
      if (known.count(job.spec.name) != 0) continue;
      const service::JobId id = manager.submit(std::move(job.spec));
      if (job.cancel_after.has_value()) {
        cancels.push_back({id, *job.cancel_after});
      }
      for (TimedMutation& m : job.mutations) {
        mutations.push_back({id, std::move(m)});
      }
    }

    const auto start = std::chrono::steady_clock::now();
    const auto elapsed = [&] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
          .count();
    };
    double next_progress = opt.progress_s;
    for (;;) {
      const std::vector<service::JobSnapshot> snaps = manager.snapshot_all();
      bool all_terminal = true;
      for (const auto& s : snaps) {
        all_terminal = all_terminal && service::is_terminal(s.state);
      }
      if (all_terminal) break;
      const double t = elapsed();
      for (Pending& c : cancels) {
        if (!c.cancelled && t >= c.cancel_after) {
          manager.cancel(c.id);
          c.cancelled = true;
        }
      }
      for (PendingMutation& m : mutations) {
        if (m.fired || t < m.mutation.at_s) continue;
        m.fired = true;
        try {
          if (m.mutation.add) {
            manager.add_targets(m.id, m.mutation.hexes);
          } else {
            manager.remove_targets(m.id, m.mutation.hexes);
          }
        } catch (const gks::Error& e) {
          // The job may have finished before the timer fired; a late
          // mutation is a no-op, not a batch failure.
          std::fprintf(stderr, "warning: mutation skipped: %s\n", e.what());
        }
      }
      if (!opt.quiet && !opt.json && t >= next_progress) {
        print_progress(snaps, t);
        next_progress += opt.progress_s;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return report(manager.snapshot_all(), opt.json);
  } catch (const gks::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
