// gks-jobs: multi-tenant batch front end to the job service.
//
//   gks-jobs BATCHFILE [options]
//
// The batch format (one job per line, key=value tokens) is documented
// in tools/batch_format.h.
//
// Options:
//   --workers N        worker threads                  [hardware]
//   --journal FILE     checkpoint journal (JSON lines)
//   --resume           reload FILE first; only unscanned gaps of
//                      unfinished jobs are dispatched again, and batch
//                      entries whose name the journal already knows
//                      are not resubmitted
//   --connect ADDR     remote mode: submit the batch to a running
//                      gks-coordd at host:port and watch it from there
//                      (--workers/--journal/--resume are then invalid;
//                      the coordinator owns the journal)
//   --progress SECS    streamed per-job progress period [1.0]
//   --quiet            no progress stream
//   --json             machine-readable final report on stdout
//
// Exit status: 0 when every job completed with all its targets
// recovered, 1 otherwise (cancelled, failed, or keys not in space).

#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "batch_format.h"
#include "dist/protocol.h"
#include "dist/tcp_transport.h"
#include "service/job_manager.h"
#include "support/error.h"
#include "support/json.h"
#include "support/table.h"

namespace {

using namespace gks;
using tools::BatchJob;
using tools::TimedMutation;

struct Options {
  std::string batch_path;
  std::size_t workers = 0;
  std::string journal;
  bool resume = false;
  std::string connect;
  double progress_s = 1.0;
  bool quiet = false;
  bool json = false;
};

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: %s BATCHFILE [--workers N] [--journal FILE] "
               "[--resume] [--connect HOST:PORT] [--progress SECS] "
               "[--quiet] [--json]\n"
               "see tools/batch_format.h for the batch format\n",
               argv0);
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], "missing option value");
      return argv[++i];
    };
    if (arg == "--workers") {
      opt.workers = std::stoul(need_value());
    } else if (arg == "--journal") {
      opt.journal = need_value();
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (arg == "--connect") {
      opt.connect = need_value();
    } else if (arg == "--progress") {
      opt.progress_s = std::stod(need_value());
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0], ("unknown option: " + arg).c_str());
    } else if (opt.batch_path.empty()) {
      opt.batch_path = arg;
    } else {
      usage(argv[0], "more than one batch file given");
    }
  }
  if (opt.batch_path.empty()) usage(argv[0], "no batch file given");
  if (opt.resume && opt.journal.empty()) {
    usage(argv[0], "--resume needs --journal");
  }
  if (!opt.connect.empty() &&
      (opt.workers != 0 || !opt.journal.empty() || opt.resume)) {
    usage(argv[0], "--connect excludes --workers/--journal/--resume");
  }
  return opt;
}

void print_progress(const std::vector<service::JobSnapshot>& snaps,
                    double t) {
  for (const auto& s : snaps) {
    std::printf("[%6.1fs] %-12s %-9s %5.1f%%  %8.2f Mkeys/s  "
                "%zu/%zu found  eta %.1fs\n",
                t, s.name.c_str(), service::job_state_name(s.state),
                100.0 * s.progress(), s.keys_per_s / 1e6, s.targets_found,
                s.targets_total, s.eta_s);
  }
  std::fflush(stdout);
}

int report(const std::vector<service::JobSnapshot>& snaps, bool json) {
  bool all_ok = true;
  for (const auto& s : snaps) {
    all_ok = all_ok && s.state == service::JobState::kDone &&
             s.targets_found == s.targets_total;
  }
  if (json) {
    json::Writer w;
    w.begin_object().key("ok").value(all_ok).key("jobs").begin_array();
    for (const auto& s : snaps) service::snapshot_to_json(w, s);
    w.end_array().end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    TablePrinter table;
    table.header({"job", "state", "scanned", "found", "keys"});
    for (const auto& s : snaps) {
      std::string keys;
      for (const auto& [digest, key] : s.found) {
        if (!keys.empty()) keys += " ";
        keys += key;
      }
      table.row({s.name, service::job_state_name(s.state),
                 s.scanned.to_string() + "/" + s.space.to_string(),
                 std::to_string(s.targets_found) + "/" +
                     std::to_string(s.targets_total),
                 keys.empty() ? "-" : keys});
    }
    std::printf("%s\n", table.str().c_str());
  }
  return all_ok ? 0 : 1;
}

/// Remote mode: the batch runs on a gks-coordd; this process is a thin
/// protocol client that submits, watches, and fires the batch's timed
/// cancellations/mutations over the wire.
int run_remote(const Options& opt, std::vector<BatchJob>& batch) {
  dist::TcpTransport transport;
  const std::unique_ptr<dist::Connection> conn =
      transport.connect(opt.connect, /*timeout_s=*/5.0);
  const auto roundtrip = [&](const std::string& body) {
    conn->send(body);
    const auto reply = conn->recv(/*timeout_s=*/10.0);
    GKS_REQUIRE(reply.has_value(), "coordinator did not answer");
    return json::parse(*reply);
  };

  dist::HelloMsg hello;
  hello.name = "gks-jobs";
  hello.threads = 0;
  const json::Value welcome = roundtrip(dist::encode(hello));
  GKS_REQUIRE(dist::message_type(welcome) == "welcome",
              "coordinator rejected session: " +
                  welcome.string_or("error", "unexpected reply"));

  std::set<std::string> ours;
  for (BatchJob& job : batch) {
    dist::SubmitMsg submit;
    submit.spec = job.spec;
    const json::Value reply = roundtrip(dist::encode(submit));
    const dist::AckMsg ack = dist::ack_from_json(reply);
    GKS_REQUIRE(ack.ok, "submit '" + job.spec.name + "' failed: " +
                            ack.error);
    ours.insert(job.spec.name);
  }

  struct PendingCancel {
    std::string job;
    double at_s;
    bool fired = false;
  };
  struct PendingMutation {
    std::string job;
    TimedMutation mutation;
    bool fired = false;
  };
  std::vector<PendingCancel> cancels;
  std::vector<PendingMutation> mutations;
  for (BatchJob& job : batch) {
    if (job.cancel_after.has_value()) {
      cancels.push_back({job.spec.name, *job.cancel_after});
    }
    for (TimedMutation& m : job.mutations) {
      mutations.push_back({job.spec.name, std::move(m)});
    }
  }

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  double next_progress = opt.progress_s;
  std::vector<service::JobSnapshot> last;
  bool peer_gone = false;
  for (;;) {
    json::Value reply;
    try {
      reply = roundtrip(dist::encode(dist::StatusMsg{}));
    } catch (const Error&) {
      // An --exit-when-done coordinator vanishes the instant its last
      // job finishes — possibly before this client observes the final
      // states. The last snapshot is the best truth available.
      peer_gone = true;
      break;
    }
    GKS_REQUIRE(dist::message_type(reply) == "status_resp",
                "unexpected status reply");
    const dist::StatusRespMsg resp = dist::status_resp_from_json(reply);
    last.clear();
    bool all_terminal = true;
    for (const service::JobSnapshot& s : resp.jobs) {
      if (ours.count(s.name) == 0) continue;
      last.push_back(s);
      all_terminal = all_terminal && service::is_terminal(s.state);
    }
    if (all_terminal && last.size() == ours.size()) break;
    const double t = elapsed();
    for (PendingCancel& c : cancels) {
      if (c.fired || t < c.at_s) continue;
      c.fired = true;
      roundtrip(dist::encode(dist::CancelMsg{c.job}));
    }
    for (PendingMutation& m : mutations) {
      if (m.fired || t < m.mutation.at_s) continue;
      m.fired = true;
      dist::TargetsMsg msg;
      msg.job = m.job;
      (m.mutation.add ? msg.add : msg.remove) = m.mutation.hexes;
      const dist::AckMsg ack =
          dist::ack_from_json(roundtrip(dist::encode(msg)));
      if (!ack.ok) {
        std::fprintf(stderr, "warning: mutation skipped: %s\n",
                     ack.error.c_str());
      }
    }
    if (!opt.quiet && !opt.json && t >= next_progress) {
      print_progress(last, t);
      next_progress += opt.progress_s;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (peer_gone) {
    std::fprintf(stderr,
                 "warning: coordinator went away; reporting last "
                 "observed status\n");
    const int rc = report(last, opt.json);
    return last.size() == ours.size() ? rc : 1;
  }
  try {
    roundtrip(dist::encode(dist::ByeMsg{}));
  } catch (const Error&) {
    // Orderly-exit race: the coordinator may quit between the final
    // status and our bye. The report below is already complete.
  }
  conn->close();
  return report(last, opt.json);
}

int run_local(const Options& opt, std::vector<BatchJob>& batch) {
  service::JobServiceConfig config;
  config.workers = opt.workers;
  config.journal_path = opt.journal;
  service::JobManager manager(config);

  // Names the journal already knows (resumed live, or finished in an
  // earlier run) are not resubmitted.
  std::set<std::string> known;
  if (opt.resume) {
    const std::size_t n = manager.resume_from(opt.journal);
    for (const auto& rec : service::JobStore::load(opt.journal)) {
      known.insert(rec.spec.name);
    }
    if (!opt.quiet && !opt.json) {
      std::printf("resumed %zu unfinished job(s) from %s\n", n,
                  opt.journal.c_str());
    }
  }

  struct Pending {
    service::JobId id;
    double cancel_after;
    bool cancelled = false;
  };
  struct PendingMutation {
    service::JobId id;
    TimedMutation mutation;
    bool fired = false;
  };
  std::vector<Pending> cancels;
  std::vector<PendingMutation> mutations;
  for (BatchJob& job : batch) {
    if (known.count(job.spec.name) != 0) continue;
    const service::JobId id = manager.submit(std::move(job.spec));
    if (job.cancel_after.has_value()) {
      cancels.push_back({id, *job.cancel_after});
    }
    for (TimedMutation& m : job.mutations) {
      mutations.push_back({id, std::move(m)});
    }
  }

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  double next_progress = opt.progress_s;
  for (;;) {
    const std::vector<service::JobSnapshot> snaps = manager.snapshot_all();
    bool all_terminal = true;
    for (const auto& s : snaps) {
      all_terminal = all_terminal && service::is_terminal(s.state);
    }
    if (all_terminal) break;
    const double t = elapsed();
    for (Pending& c : cancels) {
      if (!c.cancelled && t >= c.cancel_after) {
        manager.cancel(c.id);
        c.cancelled = true;
      }
    }
    for (PendingMutation& m : mutations) {
      if (m.fired || t < m.mutation.at_s) continue;
      m.fired = true;
      try {
        if (m.mutation.add) {
          manager.add_targets(m.id, m.mutation.hexes);
        } else {
          manager.remove_targets(m.id, m.mutation.hexes);
        }
      } catch (const gks::Error& e) {
        // The job may have finished before the timer fired; a late
        // mutation is a no-op, not a batch failure.
        std::fprintf(stderr, "warning: mutation skipped: %s\n", e.what());
      }
    }
    if (!opt.quiet && !opt.json && t >= next_progress) {
      print_progress(snaps, t);
      next_progress += opt.progress_s;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return report(manager.snapshot_all(), opt.json);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse_options(argc, argv);
    std::vector<BatchJob> batch = tools::parse_batch(opt.batch_path);
    return opt.connect.empty() ? run_local(opt, batch)
                               : run_remote(opt, batch);
  } catch (const gks::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
