// gks-top: live cluster telemetry viewer.
//
//   gks-top --connect HOST:PORT [--watch SECS] [--json]
//
// Asks a running gks-coordd for its `status` (job + worker health) and
// `metrics` (cluster telemetry) views and renders them as one dashboard:
// per-worker scan rate, lease latency percentiles, health state, and
// the coordinator's own job/journal/fault counters. Both views key
// workers by *name*, so the rows join trivially.
//
// Options:
//   --connect ADDR   coordinator to query (required)
//   --watch SECS     refresh every SECS seconds until SIGINT; the
//                    screen is cleared between frames and a dropped
//                    session is reconnected (coordinators time idle
//                    sessions out, so long watch intervals rely on
//                    this)
//   --json           print the raw metrics_resp JSON instead of tables
//                    (one document per refresh; scripts consume this)
//
// Exit status: 0 on SIGINT or a clean one-shot, 1 when the coordinator
// cannot be reached (or vanishes and stays gone mid-watch).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dist/protocol.h"
#include "dist/tcp_transport.h"
#include "obs/metrics.h"
#include "support/error.h"
#include "support/json.h"
#include "support/table.h"

namespace {

using namespace gks;

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_release); }

struct Options {
  std::string connect;
  double watch_s = 0;  ///< 0 = one shot
  bool json = false;
};

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: %s --connect HOST:PORT [--watch SECS] [--json]\n",
               argv0);
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], "missing option value");
      return argv[++i];
    };
    if (arg == "--connect") {
      opt.connect = need_value();
    } else if (arg == "--watch") {
      opt.watch_s = std::stod(need_value());
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      usage(argv[0], ("unknown option: " + arg).c_str());
    }
  }
  if (opt.connect.empty()) usage(argv[0], "--connect is required");
  return opt;
}

/// "1851", "12.3k", "4.5M" — rates are coarse by nature.
std::string fmt_rate(double v) {
  const char* suffix = "";
  if (v >= 1e9) {
    v /= 1e9;
    suffix = "G";
  } else if (v >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (v >= 1e3) {
    v /= 1e3;
    suffix = "k";
  }
  std::string out = TablePrinter::num(v, v >= 100 ? 0 : 1);
  out += suffix;
  return out;
}

/// "87us", "3.4ms", "1.2s" — spans five orders of magnitude.
std::string fmt_seconds(double s) {
  if (s <= 0) return "-";
  if (s < 1e-3) return TablePrinter::num(s * 1e6, 0) + "us";
  if (s < 1.0) return TablePrinter::num(s * 1e3, 1) + "ms";
  return TablePrinter::num(s, 2) + "s";
}

std::string quantile_cell(const obs::HistogramSnapshot* h, double p) {
  if (h == nullptr || h->count() == 0) return "-";
  return fmt_seconds(h->quantile(p));
}

/// One session with the coordinator; reconnected by the watch loop
/// when it drops (idle sessions time out server-side).
struct Client {
  dist::TcpTransport transport;
  std::unique_ptr<dist::Connection> conn;

  explicit Client(const std::string& addr) {
    conn = transport.connect(addr, /*timeout_s=*/5.0);
    dist::HelloMsg hello;
    hello.name = "gks-top";
    hello.threads = 0;
    const json::Value welcome = roundtrip(dist::encode(hello));
    GKS_REQUIRE(dist::message_type(welcome) == "welcome",
                "coordinator rejected session: " +
                    welcome.string_or("error", "unexpected reply"));
  }

  json::Value roundtrip(const std::string& body) {
    conn->send(body);
    const auto reply = conn->recv(/*timeout_s=*/10.0);
    if (!reply.has_value()) {
      throw dist::ConnectionClosed("coordinator did not answer");
    }
    return json::parse(*reply);
  }
};

/// Sums one counter across the coordinator and every worker snapshot.
std::uint64_t cluster_counter(const dist::MetricsRespMsg& m,
                              std::string_view name) {
  std::uint64_t total = m.coordinator.counter_or(name);
  for (const auto& w : m.workers) total += w.metrics.counter_or(name);
  return total;
}

void render(const dist::StatusRespMsg& status,
            const dist::MetricsRespMsg& metrics) {
  const obs::RegistrySnapshot& coord = metrics.coordinator;

  // Health state by worker name; the metrics table joins on it.
  std::vector<std::string> lines;
  std::printf("jobs: %zu    sessions: %llu    leases: %llu granted / %llu "
              "retired    found: %llu\n",
              status.jobs.size(),
              static_cast<unsigned long long>(
                  coord.counter_or("gks_coord_sessions_total")),
              static_cast<unsigned long long>(
                  coord.counter_or("gks_lease_granted_total")),
              static_cast<unsigned long long>(
                  coord.counter_or("gks_lease_retired_total")),
              static_cast<unsigned long long>(
                  coord.counter_or("gks_found_reports_total")));
  const obs::HistogramSnapshot* turnaround =
      coord.histogram("gks_coord_lease_turnaround_seconds");
  const obs::HistogramSnapshot* flush =
      coord.histogram("gks_journal_flush_seconds");
  std::printf("lease turnaround: p50 %s  p99 %s    journal: %s pending, "
              "flush p99 %s\n",
              quantile_cell(turnaround, 0.50).c_str(),
              quantile_cell(turnaround, 0.99).c_str(),
              TablePrinter::num(coord.gauge_or("gks_journal_pending_records"),
                                0)
                  .c_str(),
              quantile_cell(flush, 0.99).c_str());

  // Faults are usually all zero; only surface the line when the chaos
  // harness (or a genuinely bad network) has been at work.
  const char* kFaultCounters[] = {
      "gks_faultnet_dropped_total",    "gks_faultnet_duplicated_total",
      "gks_faultnet_corrupted_total",  "gks_faultnet_truncated_total",
      "gks_faultnet_delayed_total",    "gks_faultnet_resets_total",
      "gks_faultnet_blackholed_total",
  };
  std::string faults;
  for (const char* name : kFaultCounters) {
    const std::uint64_t n = cluster_counter(metrics, name);
    if (n == 0) continue;
    // "dropped=3" from "gks_faultnet_dropped_total"
    std::string label(name + 13);
    label.resize(label.size() - 6);
    if (!faults.empty()) faults += "  ";
    faults += label;
    faults += "=";
    faults += std::to_string(n);
  }
  if (!faults.empty()) std::printf("faults: %s\n", faults.c_str());
  std::printf("\n");

  TablePrinter table;
  table.header({"worker", "state", "age", "keys/s", "lease p50", "lease p99",
                "rtt p50", "rtt p99", "done", "lost", "reconn"});
  for (const dist::WorkerMetricsWire& w : metrics.workers) {
    std::string state = "?";
    for (const dist::WorkerHealthWire& h : status.workers) {
      if (h.name == w.name) {
        state = h.state;
        break;
      }
    }
    const obs::RegistrySnapshot& s = w.metrics;
    const obs::HistogramSnapshot* lease =
        s.histogram("gks_worker_lease_seconds");
    const obs::HistogramSnapshot* rtt = s.histogram("gks_worker_rtt_seconds");
    table.row({w.name, state, fmt_seconds(w.age_s),
               fmt_rate(s.gauge_or("gks_worker_keys_per_s")),
               quantile_cell(lease, 0.50), quantile_cell(lease, 0.99),
               quantile_cell(rtt, 0.50), quantile_cell(rtt, 0.99),
               std::to_string(
                   s.counter_or("gks_worker_leases_completed_total")),
               std::to_string(
                   s.counter_or("gks_worker_leases_abandoned_total")),
               std::to_string(s.counter_or("gks_worker_reconnects_total"))});
  }
  if (metrics.workers.empty()) {
    std::printf("(no worker telemetry yet — workers report on their first "
                "heartbeat)\n");
  } else {
    std::printf("%s\n", table.str().c_str());
  }
}

/// One refresh: status + metrics over an established session.
void refresh(Client& client, const Options& opt) {
  const json::Value status_v =
      client.roundtrip(dist::encode(dist::StatusMsg{}));
  GKS_REQUIRE(dist::message_type(status_v) == "status_resp",
              "unexpected status reply");
  const dist::StatusRespMsg status = dist::status_resp_from_json(status_v);

  const json::Value metrics_v =
      client.roundtrip(dist::encode(dist::MetricsMsg{}));
  GKS_REQUIRE(dist::message_type(metrics_v) == "metrics_resp",
              "unexpected metrics reply");
  if (opt.json) {
    std::printf("%s\n", dist::encode(dist::metrics_resp_from_json(metrics_v))
                            .c_str());
    return;
  }
  render(status, dist::metrics_resp_from_json(metrics_v));
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  std::unique_ptr<Client> client;
  int consecutive_failures = 0;
  for (;;) {
    if (g_stop.load(std::memory_order_acquire)) return 0;
    try {
      if (!client) client = std::make_unique<Client>(opt.connect);
      if (opt.watch_s > 0 && !opt.json) {
        std::printf("\x1b[2J\x1b[H");  // clear + home between frames
      }
      refresh(*client, opt);
      std::fflush(stdout);
      consecutive_failures = 0;
    } catch (const dist::TransportError& e) {
      // Session dropped (idle timeout, coordinator restart). One shot
      // fails hard; a watch tears the session down and tries again
      // next frame, giving up only when the coordinator stays gone.
      client.reset();
      if (opt.watch_s <= 0 || ++consecutive_failures >= 3) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
      }
      std::fprintf(stderr, "reconnecting: %s\n", e.what());
    } catch (const gks::Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    if (opt.watch_s <= 0) return 0;
    // Sleep in short slices so SIGINT stays prompt.
    double left = opt.watch_s;
    while (left > 0 && !g_stop.load(std::memory_order_acquire)) {
      const double nap = std::min(left, 0.1);
      std::this_thread::sleep_for(std::chrono::duration<double>(nap));
      left -= nap;
    }
  }
}
