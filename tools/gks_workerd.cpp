// gks-workerd: the distributed scan worker daemon.
//
//   gks-workerd --connect HOST:PORT [options]
//
// Leases interval quanta from a gks-coordd, sweeps them with the
// multi-target engine, reports recoveries immediately, heartbeats to
// keep its leases alive. Kill it any way you like — the coordinator
// re-dispatches whatever it had checked out.
//
// Options:
//   --connect ADDR     coordinator address (required)
//   --name NAME        worker identity in coordinator logs    [worker]
//   --threads N        scan threads                           [hardware]
//   --reconnect N      reconnect attempts after a drop        [5]
//   --backoff S        base reconnect delay; doubles per
//                      consecutive failure with ±50% jitter   [0.5]
//   --backoff-max S    cap on the doubled delay               [10]
//   --backoff-seed N   jitter PRNG seed (0 = derive from the
//                      worker name, so a fleet spreads out)   [0]
//
// The reconnect budget and the exponential backoff reset only after a
// *successful hello* — a coordinator that accepts TCP but rejects the
// session (version skew, worker ejected) still sees backed-off
// retries, not a reconnect storm.
//
// Exit status: 0 on orderly shutdown (SIGINT/SIGTERM), 1 when the
// coordinator became unreachable, 2 on bad usage.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "dist/tcp_transport.h"
#include "dist/worker_daemon.h"
#include "support/error.h"

namespace {

using namespace gks;

dist::WorkerDaemon* g_daemon = nullptr;

void handle_signal(int) {
  if (g_daemon != nullptr) g_daemon->stop();  // atomics only: async-safe
}

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: %s --connect HOST:PORT [--name NAME] [--threads N] "
               "[--reconnect N] [--backoff S] [--backoff-max S] "
               "[--backoff-seed N]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string connect;
    dist::WorkerConfig config;
    config.threads = std::max(1u, std::thread::hardware_concurrency());
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto need_value = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0], "missing option value");
        return argv[++i];
      };
      if (arg == "--connect") {
        connect = need_value();
      } else if (arg == "--name") {
        config.name = need_value();
      } else if (arg == "--threads") {
        config.threads = std::stoul(need_value());
      } else if (arg == "--reconnect") {
        config.reconnect_attempts = std::stoi(need_value());
      } else if (arg == "--backoff") {
        config.reconnect_backoff_s = std::stod(need_value());
      } else if (arg == "--backoff-max") {
        config.reconnect_backoff_max_s = std::stod(need_value());
      } else if (arg == "--backoff-seed") {
        config.backoff_seed = std::stoull(need_value());
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
      } else {
        usage(argv[0], ("unknown option: " + arg).c_str());
      }
    }
    if (connect.empty()) usage(argv[0], "--connect is required");

    dist::TcpTransport transport;
    dist::WorkerDaemon daemon(transport, config);
    g_daemon = &daemon;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    const bool orderly = daemon.run(connect);
    const auto stats = daemon.stats();
    std::fprintf(stderr,
                 "worker %s: leases=%llu abandoned=%llu found=%llu "
                 "scanned=%s reconnects=%llu\n",
                 config.name.c_str(),
                 static_cast<unsigned long long>(stats.leases_completed),
                 static_cast<unsigned long long>(stats.leases_abandoned),
                 static_cast<unsigned long long>(stats.found_reported),
                 stats.keys_scanned.to_string().c_str(),
                 static_cast<unsigned long long>(stats.reconnects));
    return orderly ? 0 : 1;
  } catch (const gks::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
