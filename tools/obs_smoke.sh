#!/usr/bin/env bash
# Multi-process smoke test of the telemetry pipeline: one gks-coordd
# with --metrics-listen/--metrics-dump plus two gks-workerd over
# localhost TCP. Passes when
#   - the Prometheus endpoint serves >= 12 metric families spanning
#     the kernel/sweep, job-service, journal and dist layers,
#   - both workers appear as worker="..." labelled series (one via
#     lease piggybacks, the idle one via idle heartbeats),
#   - gks-top renders both worker rows against the live cluster and
#     its --json view carries per-worker keys/s and lease latency,
#   - the shutdown --metrics-dump validates against the schema checker
#     (bench_schema_check.py --metrics).
#
# Usage: obs_smoke.sh <tools-bin-dir> [workdir]
set -u

BIN=${1:?usage: obs_smoke.sh <tools-bin-dir> [workdir]}
WORK=${2:-$(mktemp -d)}
TOOLS=$(cd "$(dirname "$0")" && pwd)
mkdir -p "$WORK"
cd "$WORK"

fail() {
  echo "obs_smoke: FAIL: $*" >&2
  [ -s coordd.err ] && sed 's/^/  coordd: /' coordd.err >&2
  exit 1
}

cleanup() {
  kill -9 "${CPID:-0}" "${W1:-0}" "${W2:-0}" 2>/dev/null
  wait 2>/dev/null
}
trap cleanup EXIT

scrape() {
  if command -v curl >/dev/null 2>&1; then
    curl -sf "http://$MADDR/metrics"
  else
    python3 -c "import urllib.request,sys;
sys.stdout.write(urllib.request.urlopen('http://$MADDR/metrics').read().decode())"
  fi
}

# md5("wzzzz"), lower-case length-5 keyspace — the dist_smoke workload.
cat > batch.txt <<'EOF'
name=smoke algo=md5 hash=a53d1d57496c7c3b3c5c358cd3f2d768 charset=lower min=5 max=5
EOF

rm -f journal.jsonl metrics.json coordd.out coordd.err
"$BIN/gks-coordd" --batch batch.txt --listen 127.0.0.1:0 \
  --journal journal.jsonl --local-workers 0 --lease 2.0 --heartbeat 0.25 \
  --metrics-listen 127.0.0.1:0 --metrics-dump metrics.json \
  --quiet > coordd.out 2> coordd.err &
CPID=$!

ADDR=
MADDR=
for _ in $(seq 100); do
  ADDR=$(sed -n 's/^listening on //p' coordd.out)
  MADDR=$(sed -n 's/^metrics on //p' coordd.out)
  [ -n "$ADDR" ] && [ -n "$MADDR" ] && break
  kill -0 "$CPID" 2>/dev/null || fail "coordinator died during startup"
  sleep 0.1
done
[ -n "$ADDR" ] || fail "coordinator never announced its address"
[ -n "$MADDR" ] || fail "coordinator never announced its metrics address"

"$BIN/gks-workerd" --connect "$ADDR" --name w0 --threads 2 > w0.out 2>&1 &
W1=$!
"$BIN/gks-workerd" --connect "$ADDR" --name w1 --threads 2 > w1.out 2>&1 &
W2=$!

# Wait until both workers' telemetry reached the coordinator and a
# lease completed (heartbeat piggybacks carry the counters within a
# cadence or two of the work happening).
DEADLINE=$((SECONDS + 60))
while :; do
  scrape > scrape.txt 2>/dev/null
  if grep -q 'worker="w0"' scrape.txt && \
     grep -q 'worker="w1"' scrape.txt && \
     grep -Eq 'gks_worker_leases_completed_total\{worker="w[01]"\} [1-9]' \
       scrape.txt; then
    break
  fi
  [ "$SECONDS" -lt "$DEADLINE" ] || fail "worker telemetry never arrived:
$(tail -5 scrape.txt 2>/dev/null)"
  kill -0 "$CPID" 2>/dev/null || fail "coordinator died mid-run"
  sleep 0.25
done

FAMILIES=$(grep -c '^# TYPE ' scrape.txt)
[ "$FAMILIES" -ge 12 ] || \
  fail "only $FAMILIES metric families exposed (want >= 12)"

# One family per layer proves the instrumentation spans the stack.
for metric in gks_sweep_keys_total gks_kernel_calibrations_total \
              gks_lease_granted_total gks_journal_records_total \
              gks_coord_sessions_total gks_worker_rtt_seconds_bucket; do
  grep -q "^$metric" scrape.txt || fail "no $metric series in the scrape"
done

# The live dashboard against the running cluster: both workers render.
"$BIN/gks-top" --connect "$ADDR" > top.txt 2>&1 \
  || fail "gks-top exited nonzero:
$(cat top.txt)"
grep -q '^| *w0 ' top.txt || fail "gks-top shows no w0 row:
$(cat top.txt)"
grep -q '^| *w1 ' top.txt || fail "gks-top shows no w1 row:
$(cat top.txt)"

# Its JSON view must carry the per-worker rate and latency series the
# table renders from.
"$BIN/gks-top" --connect "$ADDR" --json > top.json 2>top.json.err \
  || fail "gks-top --json exited nonzero"
python3 - top.json <<'EOF' || fail "gks-top --json lacks keys/s or lease latency"
import json, sys
doc = json.load(open(sys.argv[1]))
workers = {w["name"]: w["metrics"] for w in doc.get("workers", [])}
assert {"w0", "w1"} <= set(workers), f"workers present: {sorted(workers)}"
busy = [m for m in workers.values()
        if m.get("gks_worker_leases_completed_total", {}).get("value", "0")
        != "0"]
assert busy, "no worker reported a completed lease"
assert any(float(m.get("gks_worker_keys_per_s", {}).get("value", 0)) > 0
           for m in busy), "no worker reported keys/s"
assert any(m.get("gks_worker_lease_seconds", {}).get("buckets")
           for m in busy), "no worker reported lease latency"
EOF

kill "$W1" "$W2" 2>/dev/null
wait "$W1" "$W2" 2>/dev/null
kill -TERM "$CPID"
DEADLINE=$((SECONDS + 30))
while kill -0 "$CPID" 2>/dev/null; do
  [ "$SECONDS" -lt "$DEADLINE" ] || fail "coordinator ignored SIGTERM"
  sleep 0.1
done
wait "$CPID"

[ -s metrics.json ] || fail "no metrics dump written at shutdown"
python3 "$TOOLS/bench_schema_check.py" --metrics metrics.json \
  --min-families 12 || fail "metrics dump failed schema validation"

echo "obs_smoke: PASS ($FAMILIES families, both workers visible," \
     "dump validated)"
exit 0
